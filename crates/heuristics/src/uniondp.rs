//! UnionDP — the paper's novel graph-partitioning heuristic (§4.2,
//! Algorithm 4).
//!
//! The key idea: partition the join graph into sub-problems of at most `k`
//! relations, solve each *optimally* with MPDP, contract each solved
//! partition into a composite node, and recurse on the contracted graph
//! until it fits one exact invocation.
//!
//! Partitioning balances two pulls (§4.2): partitions should be as close to
//! `k` as possible (bigger exact sub-problems → better plans), and the total
//! weight of *cut* edges should be high, pushing expensive joins towards the
//! top of the plan tree. Edges are therefore processed "in increasing order
//! of size(leftRelSet + rightRelSet)" with ties broken by increasing weight,
//! and two partitions union only while their combined size stays ≤ `k`.

use crate::idp::project_large;
use crate::large::{
    contract, recost, substitute_leaves, Budget, InnerLarge, LargeOptResult, LargeOptimizer,
};
use crate::unionfind::UnionFind;
use mpdp_core::plan::PlanTree;
use mpdp_core::query::{LargeQuery, RelInfo};
use mpdp_core::OptError;
use mpdp_cost::model::{CostModel, InputEst};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Heap entry: lazily re-keyed edge, popped in increasing (size-sum, weight)
/// order.
struct HeapEdge {
    size_sum: usize,
    weight: f64,
    u: usize,
    v: usize,
}

impl PartialEq for HeapEdge {
    fn eq(&self, other: &Self) -> bool {
        self.size_sum == other.size_sum && self.weight == other.weight
    }
}
impl Eq for HeapEdge {}
impl PartialOrd for HeapEdge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEdge {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-(size, weight).
        other.size_sum.cmp(&self.size_sum).then_with(|| {
            other
                .weight
                .partial_cmp(&self.weight)
                .unwrap_or(Ordering::Equal)
        })
    }
}

/// Edge weight: the cost (under the run's model) of joining the two endpoint
/// relations across the edge ("assignEdgeWeights" in Algorithm 4, line 6).
fn edge_weight(q: &LargeQuery, model: &dyn CostModel, u: usize, v: usize, sel: f64) -> f64 {
    let (ru, rv) = (q.rels[u], q.rels[v]);
    let rows = ru.rows * rv.rows * sel;
    model.join_cost(
        InputEst {
            cost: ru.cost,
            rows: ru.rows,
        },
        InputEst {
            cost: rv.cost,
            rows: rv.rows,
        },
        rows,
    )
}

/// One level of UnionDP's recursion: partition, solve each partition with
/// `inner`, contract. Returns the contracted query and the composite plans.
fn partition_and_solve(
    q: &LargeQuery,
    model: &dyn CostModel,
    k: usize,
    inner: &dyn Fn(&LargeQuery) -> Result<PlanTree, OptError>,
    comps: Vec<PlanTree>,
    budget: &Budget,
) -> Result<(LargeQuery, Vec<PlanTree>), OptError> {
    let n = q.num_rels();
    // Partition phase (Algorithm 4 lines 7-14). Requirement (2) of §4.2 —
    // "the sum of weight of cut edges of the partitions needs to be as high
    // as possible" — is implemented by reserving the heaviest edges as cut
    // edges: they are withheld from the union pass so the most expensive
    // joins land as late as possible in the plan tree. If withholding them
    // stalls the partitioning entirely (no union possible), they are
    // released, honouring the trade-off with requirement (1).
    let mut weights: Vec<f64> = q
        .edges
        .iter()
        .map(|e| edge_weight(q, model, e.u as usize, e.v as usize, e.sel))
        .collect();
    let heavy_threshold = {
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() as f64) * 0.85) as usize;
        sorted.get(idx).copied().unwrap_or(f64::INFINITY)
    };
    let mut uf = UnionFind::new(n);
    let mut heavy_pass = false;
    loop {
        let mut heap: BinaryHeap<HeapEdge> = q
            .edges
            .iter()
            .zip(weights.iter())
            .filter(|(_, &w)| heavy_pass || w < heavy_threshold)
            .map(|(e, &w)| HeapEdge {
                size_sum: uf.set_size(e.u as usize) + uf.set_size(e.v as usize),
                weight: w,
                u: e.u as usize,
                v: e.v as usize,
            })
            .collect();
        let mut unions = 0usize;
        while let Some(e) = heap.pop() {
            budget.check()?;
            if uf.find(e.u) == uf.find(e.v) {
                continue;
            }
            let sum = uf.set_size(e.u) + uf.set_size(e.v);
            if sum > k {
                continue; // stays a cut edge
            }
            if sum != e.size_sum {
                // Stale key: re-push with the current size.
                heap.push(HeapEdge { size_sum: sum, ..e });
                continue;
            }
            uf.union(e.u, e.v);
            unions += 1;
        }
        if unions > 0 || heavy_pass {
            break;
        }
        // Light edges alone made no progress; release the heavy ones.
        heavy_pass = true;
    }
    weights.clear();

    // Solve each partition optimally and contract (lines 15-19).
    let groups = uf.groups();
    let mut cur = q.clone();
    let mut cur_comps = comps;
    // Track current indices through successive contractions.
    let mut cur_index: Vec<usize> = (0..n).collect();
    for group in groups {
        if group.len() == 1 {
            continue; // singleton partitions stay as they are
        }
        budget.check()?;
        let cur_group: Vec<usize> = group.iter().map(|&g| cur_index[g]).collect();
        let (sub, _) = project_large(&cur, &cur_group);
        let sub_plan = inner(&sub)?;
        let sub_plan = recost(&sub_plan, &sub, model);
        let mapping: Vec<PlanTree> = cur_group.iter().map(|&g| cur_comps[g].clone()).collect();
        let full = substitute_leaves(&sub_plan, &mapping);
        let info = RelInfo::new(sub_plan.rows(), sub_plan.cost());
        let (next, idx_map) = contract(&cur, &cur_group, info);
        let comp_idx = idx_map[cur_group[0]];
        let mut next_comps = vec![
            PlanTree::Scan {
                rel: 0,
                rows: 0.0,
                cost: 0.0
            };
            next.num_rels()
        ];
        for (old, plan) in cur_comps.into_iter().enumerate() {
            let ni = idx_map[old];
            if ni != comp_idx {
                next_comps[ni] = plan;
            }
        }
        next_comps[comp_idx] = full;
        cur_comps = next_comps;
        for ci in cur_index.iter_mut() {
            *ci = idx_map[*ci];
        }
        cur = next;
    }
    Ok((cur, cur_comps))
}

/// Runs UnionDP with a pluggable exact step.
pub fn uniondp_with_inner(
    q: &LargeQuery,
    model: &dyn CostModel,
    k: usize,
    inner: &dyn Fn(&LargeQuery) -> Result<PlanTree, OptError>,
    budget: &Budget,
) -> Result<PlanTree, OptError> {
    assert!(k >= 2, "UnionDP needs k >= 2");
    if q.num_rels() == 0 {
        return Err(OptError::EmptyQuery);
    }
    if !q.is_connected() {
        return Err(OptError::DisconnectedGraph);
    }
    let mut cur = q.clone();
    let mut comps: Vec<PlanTree> = (0..q.num_rels())
        .map(|i| PlanTree::Scan {
            rel: i as u32,
            rows: q.rels[i].rows,
            cost: q.rels[i].cost,
        })
        .collect();
    loop {
        budget.check()?;
        if cur.num_rels() <= k {
            // Line 1-3: the remaining graph fits one exact invocation.
            let plan = inner(&cur)?;
            let plan = recost(&plan, &cur, model);
            let full = substitute_leaves(&plan, &comps);
            return Ok(recost(&full, q, model));
        }
        let before = cur.num_rels();
        let (next, next_comps) = partition_and_solve(q_ref(&cur), model, k, inner, comps, budget)?;
        cur = next;
        comps = next_comps;
        if cur.num_rels() >= before {
            return Err(OptError::Internal(
                "UnionDP made no progress (partition phase produced no unions)".into(),
            ));
        }
    }
}

#[inline]
fn q_ref(q: &LargeQuery) -> &LargeQuery {
    q
}

/// The UnionDP optimizer with MPDP as the exact step — the paper's
/// "UnionDP-MPDP (k)".
#[derive(Copy, Clone, Debug)]
pub struct UnionDp {
    /// Maximum partition size (paper default 15; "plan quality were similar
    /// with k = 25, while running much faster" with 15).
    pub k: usize,
}

impl Default for UnionDp {
    fn default() -> Self {
        UnionDp { k: 15 }
    }
}

impl LargeOptimizer for UnionDp {
    fn name(&self) -> String {
        format!("UnionDP-MPDP ({})", self.k)
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let b = Budget::new(budget);
        let inner = |sub: &LargeQuery| -> Result<PlanTree, OptError> {
            let qi = sub.to_query_info().ok_or(OptError::TooLarge {
                got: sub.num_rels(),
                max: 64,
            })?;
            let ctx = mpdp_dp::common::OptContext {
                query: &qi,
                model,
                deadline: b.deadline(),
                budget: b.budget(),
                enumeration: mpdp_core::enumerate::EnumerationMode::default(),
            };
            Ok(mpdp_dp::mpdp::Mpdp::run(&ctx)?.plan)
        };
        let plan = uniondp_with_inner(q, model, self.k, &inner, &b)?;
        Ok(LargeOptResult {
            cost: plan.cost(),
            rows: plan.rows(),
            plan,
        })
    }
}

/// UnionDP with a caller-chosen inner optimizer (for ablations).
pub struct UnionDpWith<'a> {
    /// Maximum partition size.
    pub k: usize,
    /// Exact step.
    pub inner: InnerLarge<'a>,
    /// Report label.
    pub label: String,
}

impl LargeOptimizer for UnionDpWith<'_> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let b = Budget::new(budget);
        let plan = uniondp_with_inner(q, model, self.k, self.inner, &b)?;
        Ok(LargeOptResult {
            cost: plan.cost(),
            rows: plan.rows(),
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goo::Goo;
    use crate::large::validate_large;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn equals_exact_when_k_covers_query() {
        let m = PgLikeCost::new();
        let q = gen::cycle(9, 3, &m);
        let r = UnionDp { k: 9 }.optimize(&q, &m, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((r.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn valid_and_never_beats_exact() {
        let m = PgLikeCost::new();
        for seed in 0..4 {
            let q = gen::random_connected(11, 3, seed, &m);
            let r = UnionDp { k: 4 }.optimize(&q, &m, None).unwrap();
            assert!(validate_large(&r.plan, &q).is_none(), "seed {seed}");
            let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
            assert!(r.cost >= exact.cost * (1.0 - 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn partitions_respect_k() {
        // Verified indirectly: with k = 4 on a 30-rel snowflake the result
        // must still be a valid full plan (partition projection would fail
        // loudly if sizes leaked past k ≤ 64 invariants).
        let m = PgLikeCost::new();
        let q = gen::snowflake(30, 4, 6, &m);
        let r = UnionDp { k: 4 }.optimize(&q, &m, None).unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        assert_eq!(r.plan.num_rels(), 30);
    }

    #[test]
    fn beats_goo_on_snowflakes() {
        // The paper's Table 1 headline: UnionDP finds much cheaper snowflake
        // plans than GOO. Check it's at least never materially worse across
        // a few seeds, and strictly better on at least one.
        let m = PgLikeCost::new();
        let mut strictly_better = false;
        for seed in 0..5 {
            let q = gen::snowflake(40, 4, seed, &m);
            let u = UnionDp { k: 15 }.optimize(&q, &m, None).unwrap();
            let g = Goo::run(&q, &m, None).unwrap();
            if u.cost < g.cost * 0.999 {
                strictly_better = true;
            }
            assert!(
                u.cost <= g.cost * 1.15,
                "seed {seed}: uniondp {} vs goo {}",
                u.cost,
                g.cost
            );
        }
        assert!(strictly_better);
    }

    #[test]
    fn scales_to_hundreds() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(200, 4, 2, &m);
        let r = UnionDp { k: 10 }
            .optimize(&q, &m, Some(Duration::from_secs(120)))
            .unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        assert_eq!(r.plan.num_rels(), 200);
    }
}
