//! Disjoint-set (union-find) with path compression and union by size.
//!
//! UnionDP "uses the UnionFind data structure to maintain the partition
//! information over relations, and for efficient find and union set
//! operations" (§4.2.1).

/// A union-find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    groups: usize,
}

impl UnionFind {
    /// `n` singleton sets (`makeSet(G)` in Algorithm 4).
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            groups: n,
        }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Unions the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.groups -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Materializes the partition as a list of groups (each sorted by index;
    /// groups ordered by their smallest member).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_groups(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_tracks_size() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.set_size(0), 3);
        assert_eq!(uf.find(2), uf.find(0));
        assert_eq!(uf.num_groups(), 3);
    }

    #[test]
    fn groups_materialization() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(3, 4);
        let g = uf.groups();
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], vec![0, 2]);
        assert_eq!(g[1], vec![1]);
        assert_eq!(g[2], vec![3, 4]);
        assert_eq!(g[3], vec![5]);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_groups(), 1);
        assert_eq!(uf.set_size(999), 1000);
    }
}
