//! GOO — Greedy Operator Ordering (Fegaras \[8\]).
//!
//! Repeatedly joins the pair of current sub-plans whose join produces the
//! smallest intermediate result ("uses the resulting join relation size to
//! greedily pick the best join at each step", §7.3). Produces bushy trees in
//! `O(n·E)` time, scales to thousands of relations, and is the paper's
//! initial-plan builder for all IDP2 variants ("For all IDP2 variants, we use
//! GOO for the heuristic step").

use crate::large::{validate_large, Budget, LargeOptResult, LargeOptimizer};
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use mpdp_core::OptError;
use mpdp_cost::model::{CostModel, InputEst};
use std::collections::BTreeMap;
use std::time::Duration;

/// The GOO optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Goo;

impl Goo {
    /// Runs GOO, returning a bushy plan.
    pub fn run(
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let n = q.num_rels();
        if n == 0 {
            return Err(OptError::EmptyQuery);
        }
        if !q.is_connected() {
            return Err(OptError::DisconnectedGraph);
        }
        let timer = Budget::new(budget);

        // Active sub-plans ("clumps"); adjacency holds combined selectivity
        // between active entries. Ordered map, NOT a hash map: the greedy
        // scan below keeps the *first* pair at the minimal output size, so
        // iteration order is tie-breaking order — it must be identical on
        // every run for plans (and downstream executed row counts) to be
        // reproducible.
        struct Clump {
            plan: PlanTree,
            adj: BTreeMap<usize, f64>,
        }
        let mut clumps: Vec<Option<Clump>> = q
            .rels
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Some(Clump {
                    plan: PlanTree::Scan {
                        rel: i as u32,
                        rows: r.rows,
                        cost: r.cost,
                    },
                    adj: BTreeMap::new(),
                })
            })
            .collect();
        for e in &q.edges {
            let (u, v) = (e.u as usize, e.v as usize);
            *clumps[u].as_mut().unwrap().adj.entry(v).or_insert(1.0) *= e.sel;
            *clumps[v].as_mut().unwrap().adj.entry(u).or_insert(1.0) *= e.sel;
        }

        for _ in 1..n {
            timer.check()?;
            // Find the connected pair minimizing output rows.
            let mut best: Option<(usize, usize, f64)> = None;
            for (u, c) in clumps.iter().enumerate() {
                let Some(c) = c else { continue };
                for (&v, &sel) in &c.adj {
                    if v <= u {
                        continue;
                    }
                    let other = clumps[v].as_ref().expect("adjacency must be live");
                    let out_rows = c.plan.rows() * other.plan.rows() * sel;
                    match best {
                        Some((_, _, b)) if b <= out_rows => {}
                        _ => best = Some((u, v, out_rows)),
                    }
                }
            }
            let (u, v, out_rows) =
                best.ok_or(OptError::Internal("GOO found no joinable pair".into()))?;
            let cu = clumps[u].take().unwrap();
            let cv = clumps[v].take().unwrap();
            // Order the pair by cheaper cost (both orders priced).
            let (lc, rc) = (
                InputEst {
                    cost: cu.plan.cost(),
                    rows: cu.plan.rows(),
                },
                InputEst {
                    cost: cv.plan.cost(),
                    rows: cv.plan.rows(),
                },
            );
            let c_uv = model.join_cost(lc, rc, out_rows);
            let c_vu = model.join_cost(rc, lc, out_rows);
            let (lp, rp, cost) = if c_uv <= c_vu {
                (cu.plan, cv.plan, c_uv)
            } else {
                (cv.plan, cu.plan, c_vu)
            };
            let joined = PlanTree::Join {
                left: Box::new(lp),
                right: Box::new(rp),
                rows: out_rows,
                cost,
            };
            // Merge adjacency: neighbours of u and v (excluding each other),
            // multiplying selectivities where both touched the same target.
            let mut adj: BTreeMap<usize, f64> = BTreeMap::new();
            for (w, sel) in cu.adj.into_iter().chain(cv.adj) {
                if w == u || w == v {
                    continue;
                }
                *adj.entry(w).or_insert(1.0) *= sel;
            }
            // Install at slot u; rewire neighbours to point at u.
            for (&w, &sel) in &adj {
                let cw = clumps[w].as_mut().expect("neighbour must be live");
                cw.adj.remove(&u);
                cw.adj.remove(&v);
                *cw.adj.entry(u).or_insert(1.0) = sel;
            }
            clumps[u] = Some(Clump { plan: joined, adj });
        }

        let final_plan = clumps
            .into_iter()
            .flatten()
            .next()
            .ok_or(OptError::Internal("GOO produced no plan".into()))?
            .plan;
        Ok(LargeOptResult {
            cost: final_plan.cost(),
            rows: final_plan.rows(),
            plan: final_plan,
        })
    }
}

impl LargeOptimizer for Goo {
    fn name(&self) -> String {
        "GOO".into()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let r = Goo::run(q, model, budget)?;
        debug_assert!(validate_large(&r.plan, q).is_none());
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn goo_produces_valid_plans() {
        let m = PgLikeCost::new();
        for q in [
            gen::star(20, 1, &m),
            gen::snowflake(40, 4, 2, &m),
            gen::cycle(15, 3, &m),
            gen::clique(10, 4, &m),
        ] {
            let r = Goo::run(&q, &m, None).unwrap();
            assert!(validate_large(&r.plan, &q).is_none());
            assert_eq!(r.plan.num_rels(), q.num_rels());
        }
    }

    #[test]
    fn goo_never_beats_exact() {
        let m = PgLikeCost::new();
        for seed in 0..5 {
            let q = gen::random_connected(9, 4, seed, &m);
            let goo = Goo::run(&q, &m, None).unwrap();
            let qi = q.to_query_info().unwrap();
            let exact = Mpdp::run(&OptContext::new(&qi, &m)).unwrap();
            assert!(
                goo.cost >= exact.cost * (1.0 - 1e-9),
                "seed {seed}: goo {} < optimal {}",
                goo.cost,
                exact.cost
            );
        }
    }

    /// Repeated runs in one process produce the identical plan, even when
    /// every candidate pair ties on output size. Tie-breaking is iteration
    /// order of the adjacency map — with the old `HashMap` (per-instance
    /// random state) two in-process runs could pick different equal-size
    /// pairs, which the executor's cross-worker-count determinism gate
    /// caught as diverging rows-touched counts on the JOB shape.
    #[test]
    fn goo_is_deterministic_across_runs() {
        let m = PgLikeCost::new();
        // A star of identical dimensions: all first-step pairs tie exactly.
        let mut q = LargeQuery::new(vec![mpdp_core::RelInfo::new(1_000.0, 10.0); 9]);
        for i in 1..9 {
            q.add_edge(0, i, 1e-3);
        }
        let baseline = Goo::run(&q, &m, None).unwrap();
        for _ in 0..5 {
            let again = Goo::run(&q, &m, None).unwrap();
            assert_eq!(
                format!("{:?}", again.plan),
                format!("{:?}", baseline.plan),
                "tie-breaking must not vary between runs"
            );
        }
    }

    #[test]
    fn goo_is_exact_on_two_relations() {
        let m = PgLikeCost::new();
        let q = gen::chain(2, 5, &m);
        let goo = Goo::run(&q, &m, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((goo.cost - exact.cost).abs() < 1e-9 * exact.cost.max(1.0));
    }

    #[test]
    fn goo_scales_to_1000_rels() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(1000, 4, 9, &m);
        let r = Goo::run(&q, &m, Some(Duration::from_secs(60))).unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        assert_eq!(r.plan.num_rels(), 1000);
    }

    #[test]
    fn goo_rejects_disconnected() {
        let q = LargeQuery::new(vec![mpdp_core::RelInfo::new(1.0, 1.0); 2]);
        let m = PgLikeCost::new();
        assert_eq!(
            Goo::run(&q, &m, None).unwrap_err(),
            OptError::DisconnectedGraph
        );
    }
}
