//! IDP — Iterative Dynamic Programming (Kossmann & Stocker \[17\]).
//!
//! * **IDP1** builds optimal plans bottom-up like plain DP but stops at
//!   subplans of `k` relations, materializes the cheapest `k`-relation plan
//!   as a temporary table, and iterates. `O(n^k)` — only viable for small
//!   `k`, which is why the paper uses IDP2 for its evaluation.
//! * **IDP2** applies the heuristic *a priori*: build a full tentative plan
//!   (GOO here, as in §7.3), then repeatedly select the most costly subtree
//!   with at most `k` leaves, re-optimize it exactly, and replace it by a
//!   temporary table until one table remains (§4.1).
//!
//! The paper's contribution is plugging MPDP in as IDP2's exact step
//! ("IDP2-MPDP (k)"), enabling `k` up to 25 on the GPU. The inner optimizer
//! is pluggable ([`InnerLarge`]) so LinDP's >100-relation mode can reuse the
//! same driver with linearized-DP blocks.

use crate::goo::Goo;
use crate::large::{
    contract, recost, substitute_leaves, Budget, InnerLarge, LargeOptResult, LargeOptimizer,
};
use mpdp_core::plan::PlanTree;
use mpdp_core::query::{LargeQuery, RelInfo};
use mpdp_core::OptError;
use mpdp_cost::model::CostModel;
use std::time::Duration;

/// Runs the pluggable-inner IDP2 loop. `inner` receives a *projected*
/// sub-query (scan indices `0..group.len()`) of at most `k` relations and
/// must return its plan.
pub fn idp2_with_inner(
    q: &LargeQuery,
    model: &dyn CostModel,
    k: usize,
    inner: &dyn Fn(&LargeQuery) -> Result<PlanTree, OptError>,
    budget: &Budget,
) -> Result<PlanTree, OptError> {
    assert!(k >= 2, "IDP2 needs k >= 2");
    let n = q.num_rels();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    if !q.is_connected() {
        return Err(OptError::DisconnectedGraph);
    }
    if n <= k {
        // Whole query fits one exact invocation.
        let plan = inner(q)?;
        return Ok(recost(&plan, q, model));
    }

    // Composite state: `cur` is the contracted query; `comps[i]` is the full
    // original-relation plan behind composite `i`.
    let mut cur = q.clone();
    let mut comps: Vec<PlanTree> = (0..n)
        .map(|i| PlanTree::Scan {
            rel: i as u32,
            rows: q.rels[i].rows,
            cost: q.rels[i].cost,
        })
        .collect();

    // Initial tentative plan over composite ids.
    let mut tree = Goo::run(&cur, model, None)?.plan;

    loop {
        budget.check()?;
        if let PlanTree::Scan { rel, .. } = tree {
            // One temporary table remains: revert to its full tree.
            let final_plan = comps[rel as usize].clone();
            return Ok(recost(&final_plan, q, model));
        }
        // Find the most costly subtree with 2..=k leaves. Recost the working
        // tree first so subtree costs reflect the current composites.
        tree = recost(&tree, &cur, model);
        let path = most_costly_subtree(&tree, k)
            .ok_or_else(|| OptError::Internal("IDP2 found no candidate subtree".into()))?;
        let sub = subtree_at(&tree, &path);
        let mut group: Vec<usize> = Vec::new();
        collect_leaves(sub, &mut group);
        group.sort_unstable();
        group.dedup();

        // Optimize the group exactly over the projected sub-query.
        let (sub_query, _) = project_large(&cur, &group);
        let sub_plan = inner(&sub_query)?;
        let sub_plan = recost(&sub_plan, &sub_query, model);
        // Translate projected leaves back to full original-relation plans.
        let mapping: Vec<PlanTree> = group.iter().map(|&g| comps[g].clone()).collect();
        let full_sub_plan = substitute_leaves(&sub_plan, &mapping);

        // Contract the group into a new composite.
        let info = RelInfo::new(sub_plan.rows(), sub_plan.cost());
        let (new_cur, idx_map) = contract(&cur, &group, info);
        let comp_idx = idx_map[group[0]];
        let mut new_comps: Vec<PlanTree> = vec![
            PlanTree::Scan {
                rel: 0,
                rows: 0.0,
                cost: 0.0
            };
            new_cur.num_rels()
        ];
        for (old, plan) in comps.into_iter().enumerate() {
            let ni = idx_map[old];
            if ni != comp_idx {
                new_comps[ni] = plan;
            }
        }
        new_comps[comp_idx] = full_sub_plan;
        comps = new_comps;

        // Rewrite the working tree: replace the chosen subtree by the new
        // composite leaf and remap all other leaves.
        tree = replace_subtree(
            &tree,
            &path,
            PlanTree::Scan {
                rel: comp_idx as u32,
                rows: info.rows,
                cost: info.cost,
            },
            &idx_map,
        );
        cur = new_cur;
    }
}

/// Projects `q` onto `group` as a [`LargeQuery`] over indices
/// `0..group.len()`, dropping outside edges.
pub fn project_large(q: &LargeQuery, group: &[usize]) -> (LargeQuery, Vec<usize>) {
    let mut index_of = vec![usize::MAX; q.num_rels()];
    for (new, &old) in group.iter().enumerate() {
        index_of[old] = new;
    }
    let rels: Vec<RelInfo> = group.iter().map(|&g| q.rels[g]).collect();
    let mut sub = LargeQuery::new(rels);
    for e in &q.edges {
        let (u, v) = (index_of[e.u as usize], index_of[e.v as usize]);
        if u != usize::MAX && v != usize::MAX {
            sub.add_edge(u, v, e.sel);
        }
    }
    (sub, group.to_vec())
}

fn collect_leaves(plan: &PlanTree, out: &mut Vec<usize>) {
    match plan {
        PlanTree::Scan { rel, .. } => out.push(*rel as usize),
        PlanTree::Join { left, right, .. } => {
            collect_leaves(left, out);
            collect_leaves(right, out);
        }
    }
}

/// Path to the most costly internal node with at most `k` leaves
/// (`false` = left child, `true` = right child).
fn most_costly_subtree(tree: &PlanTree, k: usize) -> Option<Vec<bool>> {
    fn rec(
        plan: &PlanTree,
        k: usize,
        path: &mut Vec<bool>,
        best: &mut Option<(f64, Vec<bool>)>,
    ) -> usize {
        match plan {
            PlanTree::Scan { .. } => 1,
            PlanTree::Join {
                left, right, cost, ..
            } => {
                path.push(false);
                let l = rec(left, k, path, best);
                path.pop();
                path.push(true);
                let r = rec(right, k, path, best);
                path.pop();
                let leaves = l + r;
                if leaves <= k {
                    match best {
                        Some((c, _)) if *c >= *cost => {}
                        _ => *best = Some((*cost, path.clone())),
                    }
                }
                leaves
            }
        }
    }
    let mut best = None;
    let mut path = Vec::new();
    rec(tree, k, &mut path, &mut best);
    best.map(|(_, p)| p)
}

fn subtree_at<'a>(tree: &'a PlanTree, path: &[bool]) -> &'a PlanTree {
    let mut cur = tree;
    for &dir in path {
        match cur {
            PlanTree::Join { left, right, .. } => {
                cur = if dir { right } else { left };
            }
            PlanTree::Scan { .. } => unreachable!("path descends past a leaf"),
        }
    }
    cur
}

/// Rebuilds `tree` with the node at `path` replaced by `replacement` and all
/// other scan leaves remapped through `idx_map`.
fn replace_subtree(
    tree: &PlanTree,
    path: &[bool],
    replacement: PlanTree,
    idx_map: &[usize],
) -> PlanTree {
    fn remap(plan: &PlanTree, idx_map: &[usize]) -> PlanTree {
        match plan {
            PlanTree::Scan { rel, rows, cost } => PlanTree::Scan {
                rel: idx_map[*rel as usize] as u32,
                rows: *rows,
                cost: *cost,
            },
            PlanTree::Join {
                left,
                right,
                rows,
                cost,
            } => PlanTree::Join {
                left: Box::new(remap(left, idx_map)),
                right: Box::new(remap(right, idx_map)),
                rows: *rows,
                cost: *cost,
            },
        }
    }
    if path.is_empty() {
        return replacement;
    }
    match tree {
        PlanTree::Join {
            left,
            right,
            rows,
            cost,
        } => {
            let (dir, rest) = (path[0], &path[1..]);
            let (l, r) = if dir {
                (
                    remap(left, idx_map),
                    replace_subtree(right, rest, replacement, idx_map),
                )
            } else {
                (
                    replace_subtree(left, rest, replacement, idx_map),
                    remap(right, idx_map),
                )
            };
            PlanTree::Join {
                left: Box::new(l),
                right: Box::new(r),
                rows: *rows,
                cost: *cost,
            }
        }
        PlanTree::Scan { .. } => unreachable!("path descends past a leaf"),
    }
}

/// IDP2 with a pluggable exact step; the paper's "IDP2-MPDP (k)".
pub struct Idp2<'a> {
    /// Maximum sub-problem size handed to the exact step.
    pub k: usize,
    /// The exact optimizer (default: MPDP).
    pub inner: InnerLarge<'a>,
    /// Label for reports.
    pub label: String,
}

impl<'a> Idp2<'a> {
    /// IDP2 with a caller-supplied inner optimizer.
    pub fn with_inner(k: usize, inner: InnerLarge<'a>, label: impl Into<String>) -> Idp2<'a> {
        Idp2 {
            k,
            inner,
            label: label.into(),
        }
    }
}

impl LargeOptimizer for Idp2<'_> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let b = Budget::new(budget);
        let plan = idp2_with_inner(q, model, self.k, self.inner, &b)?;
        Ok(LargeOptResult {
            cost: plan.cost(),
            rows: plan.rows(),
            plan,
        })
    }
}

/// Convenience: runs IDP2-MPDP(k) end to end.
pub fn idp2_mpdp(
    q: &LargeQuery,
    model: &dyn CostModel,
    k: usize,
    budget: Option<Duration>,
) -> Result<LargeOptResult, OptError> {
    let b = Budget::new(budget);
    let inner = |sub: &LargeQuery| -> Result<PlanTree, OptError> {
        let qi = sub.to_query_info().ok_or(OptError::TooLarge {
            got: sub.num_rels(),
            max: 64,
        })?;
        let ctx = mpdp_dp::common::OptContext {
            query: &qi,
            model,
            deadline: b.deadline(),
            budget: b.budget(),
            enumeration: mpdp_core::enumerate::EnumerationMode::default(),
        };
        Ok(mpdp_dp::mpdp::Mpdp::run(&ctx)?.plan)
    };
    let plan = idp2_with_inner(q, model, k, &inner, &b)?;
    Ok(LargeOptResult {
        cost: plan.cost(),
        rows: plan.rows(),
        plan,
    })
}

/// IDP1 with bounded subplan size `k` (kept small; `O(n^k)`).
pub fn idp1_mpdp(
    q: &LargeQuery,
    model: &dyn CostModel,
    k: usize,
    budget: Option<Duration>,
) -> Result<LargeOptResult, OptError> {
    assert!((2..=8).contains(&k), "IDP1 is only tractable for small k");
    let b = Budget::new(budget);
    if !q.is_connected() {
        return Err(OptError::DisconnectedGraph);
    }
    let n = q.num_rels();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let mut cur = q.clone();
    let mut comps: Vec<PlanTree> = (0..n)
        .map(|i| PlanTree::Scan {
            rel: i as u32,
            rows: q.rels[i].rows,
            cost: q.rels[i].cost,
        })
        .collect();
    while cur.num_rels() > 1 {
        b.check()?;
        let kk = k.min(cur.num_rels());
        // Exhaustive bounded DP over the composite graph: cheapest plan of
        // exactly kk composites.
        let best = best_bounded_plan(&cur, model, kk, &b)?;
        let mut group: Vec<usize> = Vec::new();
        collect_leaves(&best, &mut group);
        group.sort_unstable();
        let mapping: Vec<PlanTree> = group.iter().map(|&g| comps[g].clone()).collect();
        // best's leaves are composite ids; project them to 0.. for
        // substitution.
        let mut local = vec![usize::MAX; cur.num_rels()];
        for (i, &g) in group.iter().enumerate() {
            local[g] = i;
        }
        let localized = remap_leaves(&best, &local);
        let full = substitute_leaves(&localized, &mapping);
        let info = RelInfo::new(best.rows(), best.cost());
        let (new_cur, idx_map) = contract(&cur, &group, info);
        let comp_idx = idx_map[group[0]];
        let mut new_comps = vec![
            PlanTree::Scan {
                rel: 0,
                rows: 0.0,
                cost: 0.0
            };
            new_cur.num_rels()
        ];
        for (old, plan) in comps.into_iter().enumerate() {
            let ni = idx_map[old];
            if ni != comp_idx {
                new_comps[ni] = plan;
            }
        }
        new_comps[comp_idx] = full;
        comps = new_comps;
        cur = new_cur;
    }
    let plan = recost(&comps.pop().expect("one composite left"), q, model);
    Ok(LargeOptResult {
        cost: plan.cost(),
        rows: plan.rows(),
        plan,
    })
}

fn remap_leaves(plan: &PlanTree, map: &[usize]) -> PlanTree {
    match plan {
        PlanTree::Scan { rel, rows, cost } => PlanTree::Scan {
            rel: map[*rel as usize] as u32,
            rows: *rows,
            cost: *cost,
        },
        PlanTree::Join {
            left,
            right,
            rows,
            cost,
        } => PlanTree::Join {
            left: Box::new(remap_leaves(left, map)),
            right: Box::new(remap_leaves(right, map)),
            rows: *rows,
            cost: *cost,
        },
    }
}

/// Cheapest plan covering exactly `kk` composites: enumerate connected sets
/// of size ≤ kk via BFS extension, DP over set-keyed maps.
fn best_bounded_plan(
    q: &LargeQuery,
    model: &dyn CostModel,
    kk: usize,
    budget: &Budget,
) -> Result<PlanTree, OptError> {
    use std::collections::HashMap;
    type Key = Vec<u32>;
    #[derive(Clone)]
    struct Entry {
        plan: PlanTree,
    }
    let mut levels: Vec<HashMap<Key, Entry>> = vec![HashMap::new(); kk + 1];
    for i in 0..q.num_rels() {
        levels[1].insert(
            vec![i as u32],
            Entry {
                plan: PlanTree::Scan {
                    rel: i as u32,
                    rows: q.rels[i].rows,
                    cost: q.rels[i].cost,
                },
            },
        );
    }
    for size in 2..=kk {
        budget.check()?;
        let mut next: HashMap<Key, Entry> = HashMap::new();
        // Extend every (size-1)-set by a neighbour, then try all splits of
        // the result via its sub-entries.
        let prev: Vec<Key> = levels[size - 1].keys().cloned().collect();
        for key in prev {
            let members: Vec<usize> = key.iter().map(|&x| x as usize).collect();
            let mut neighbours: Vec<usize> = Vec::new();
            for &m in &members {
                for &(w, _) in &q.adj[m] {
                    if !key.contains(&w) {
                        neighbours.push(w as usize);
                    }
                }
            }
            neighbours.sort_unstable();
            neighbours.dedup();
            for v in neighbours {
                let mut new_key: Key = key.clone();
                new_key.push(v as u32);
                new_key.sort_unstable();
                if next.contains_key(&new_key) {
                    continue;
                }
                // Best split: iterate all submask splits of the new set.
                let s = new_key.len();
                let mut best: Option<PlanTree> = None;
                for mask in 1u32..(1 << s) - 1 {
                    let left_key: Key = (0..s)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| new_key[i])
                        .collect();
                    let right_key: Key = (0..s)
                        .filter(|&i| mask & (1 << i) == 0)
                        .map(|i| new_key[i])
                        .collect();
                    let (Some(le), Some(re)) = (
                        levels[left_key.len()].get(&left_key),
                        levels[right_key.len()].get(&right_key),
                    ) else {
                        continue;
                    };
                    // Cross-product check + selectivity.
                    let mut sel = 1.0;
                    let mut connected = false;
                    for e in &q.edges {
                        let lu = left_key.contains(&e.u) && right_key.contains(&e.v);
                        let lv = left_key.contains(&e.v) && right_key.contains(&e.u);
                        if lu || lv {
                            sel *= e.sel;
                            connected = true;
                        }
                    }
                    if !connected {
                        continue;
                    }
                    let rows = le.plan.rows() * re.plan.rows() * sel;
                    let cost = model.join_cost(
                        mpdp_cost::model::InputEst {
                            cost: le.plan.cost(),
                            rows: le.plan.rows(),
                        },
                        mpdp_cost::model::InputEst {
                            cost: re.plan.cost(),
                            rows: re.plan.rows(),
                        },
                        rows,
                    );
                    match &best {
                        Some(b) if b.cost() <= cost => {}
                        _ => {
                            best = Some(PlanTree::Join {
                                left: Box::new(le.plan.clone()),
                                right: Box::new(re.plan.clone()),
                                rows,
                                cost,
                            })
                        }
                    }
                }
                if let Some(plan) = best {
                    next.insert(new_key, Entry { plan });
                }
            }
        }
        levels[size] = next;
    }
    levels[kk]
        .values()
        .min_by(|a, b| a.plan.cost().partial_cmp(&b.plan.cost()).unwrap())
        .map(|e| e.plan.clone())
        .ok_or_else(|| OptError::Internal("IDP1 found no bounded plan".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::large::validate_large;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn idp2_equals_exact_when_k_covers_query() {
        let m = PgLikeCost::new();
        let q = gen::cycle(9, 2, &m);
        let r = idp2_mpdp(&q, &m, 10, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((r.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn idp2_valid_and_never_beats_exact() {
        let m = PgLikeCost::new();
        for seed in 0..4 {
            let q = gen::random_connected(10, 3, seed, &m);
            let r = idp2_mpdp(&q, &m, 4, None).unwrap();
            assert!(validate_large(&r.plan, &q).is_none(), "seed {seed}");
            let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
            assert!(r.cost >= exact.cost * (1.0 - 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn idp2_improves_over_goo() {
        // IDP2 re-optimizes GOO's costly subtrees, so it should never be
        // worse than GOO itself.
        let m = PgLikeCost::new();
        for seed in [1, 5, 9] {
            let q = gen::star(30, seed, &m);
            let goo = Goo::run(&q, &m, None).unwrap();
            let idp = idp2_mpdp(&q, &m, 10, None).unwrap();
            assert!(
                idp.cost <= goo.cost * (1.0 + 1e-9),
                "seed {seed}: idp {} goo {}",
                idp.cost,
                goo.cost
            );
        }
    }

    #[test]
    fn idp2_scales_to_large_snowflakes() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(120, 4, 4, &m);
        let r = idp2_mpdp(&q, &m, 8, Some(Duration::from_secs(120))).unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        assert_eq!(r.plan.num_rels(), 120);
    }

    #[test]
    fn idp1_valid_and_reasonable() {
        let m = PgLikeCost::new();
        let q = gen::star(12, 3, &m);
        let r = idp1_mpdp(&q, &m, 4, None).unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!(r.cost >= exact.cost * (1.0 - 1e-9));
    }

    #[test]
    fn idp1_exact_when_k_equals_n() {
        let m = PgLikeCost::new();
        let q = gen::chain(6, 2, &m);
        let r = idp1_mpdp(&q, &m, 6, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((r.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }
}
