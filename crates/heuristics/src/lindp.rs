//! LinDP — linearized DP and the adaptive optimizer of Neumann & Radke \[26\].
//!
//! Linearized DP restricts the bushy search space to *intervals* of a linear
//! relation order (here: the best IKKBZ left-deep order) and runs an
//! `O(n³)` interval DP over it — "a novel technique that optimizes the
//! left-deep plan found by IKKBZ in polynomial time" (§7.3).
//!
//! The adaptive driver follows the original paper's thresholds, quoted in
//! §6: "DPCCP for small queries (<14 tables), linearized DP for medium
//! queries (between 14 and 100), and IDP2 with linearized DP for large
//! queries (>100 tables)".

use crate::idp::idp2_with_inner;
use crate::ikkbz::Ikkbz;
use crate::large::{Budget, LargeOptResult, LargeOptimizer};
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use mpdp_core::OptError;
use mpdp_cost::model::{CostModel, InputEst};
use std::time::Duration;

/// Interval DP over a fixed linear order: the plan space is all bushy trees
/// whose every subtree covers a contiguous interval of `order`.
pub fn interval_dp(
    q: &LargeQuery,
    order: &[usize],
    model: &dyn CostModel,
    budget: &Budget,
) -> Result<LargeOptResult, OptError> {
    let n = order.len();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    // Pairwise selectivity between order positions (1.0 = no edge).
    let mut sel = vec![vec![1.0f64; n]; n];
    let mut has_edge = vec![vec![false; n]; n];
    let mut pos_of = vec![usize::MAX; q.num_rels()];
    for (p, &r) in order.iter().enumerate() {
        pos_of[r] = p;
    }
    for e in &q.edges {
        let (pu, pv) = (pos_of[e.u as usize], pos_of[e.v as usize]);
        if pu == usize::MAX || pv == usize::MAX {
            continue;
        }
        sel[pu][pv] *= e.sel;
        sel[pv][pu] *= e.sel;
        has_edge[pu][pv] = true;
        has_edge[pv][pu] = true;
    }
    // rows[i][j]: cardinality of interval [i, j]; edges[i][j]: induced edge
    // count — both built incrementally.
    let mut rows = vec![vec![0.0f64; n]; n];
    let mut edges = vec![vec![0u32; n]; n];
    for i in 0..n {
        rows[i][i] = q.rels[order[i]].rows;
    }
    for j in 1..n {
        for i in (0..j).rev() {
            let mut cross_sel = 1.0;
            let mut cross_edges = 0u32;
            for p in i..j {
                cross_sel *= sel[p][j];
                cross_edges += has_edge[p][j] as u32;
            }
            rows[i][j] = rows[i][j - 1] * q.rels[order[j]].rows * cross_sel;
            edges[i][j] = edges[i][j - 1] + cross_edges;
        }
    }
    // DP over intervals: best (cost, split, order) per [i, j].
    let mut cost = vec![vec![f64::INFINITY; n]; n];
    let mut split = vec![vec![usize::MAX; n]; n];
    let mut swapped = vec![vec![false; n]; n];
    for i in 0..n {
        cost[i][i] = q.rels[order[i]].cost;
    }
    for len in 2..=n {
        budget.check()?;
        for i in 0..=(n - len) {
            let j = i + len - 1;
            for k in i..j {
                // Cross-product-free: the two sides must share an edge.
                let crossing = edges[i][j] - edges[i][k] - edges[k + 1][j];
                if crossing == 0 {
                    continue;
                }
                if cost[i][k].is_infinite() || cost[k + 1][j].is_infinite() {
                    continue;
                }
                let out_rows = rows[i][j];
                let lo = InputEst {
                    cost: cost[i][k],
                    rows: rows[i][k],
                };
                let hi = InputEst {
                    cost: cost[k + 1][j],
                    rows: rows[k + 1][j],
                };
                // The cost model is order-sensitive (hash build side); try
                // both orders like the exact DP does.
                let c_fwd = model.join_cost(lo, hi, out_rows);
                let c_rev = model.join_cost(hi, lo, out_rows);
                let (c, sw) = if c_fwd <= c_rev {
                    (c_fwd, false)
                } else {
                    (c_rev, true)
                };
                if c < cost[i][j] {
                    cost[i][j] = c;
                    split[i][j] = k;
                    swapped[i][j] = sw;
                }
            }
        }
    }
    if cost[0][n - 1].is_infinite() {
        return Err(OptError::Internal(
            "interval DP found no cross-product-free plan for the order".into(),
        ));
    }
    // Reconstruct.
    #[allow(clippy::too_many_arguments)]
    fn build(
        i: usize,
        j: usize,
        order: &[usize],
        rows: &[Vec<f64>],
        cost: &[Vec<f64>],
        split: &[Vec<usize>],
        swapped: &[Vec<bool>],
    ) -> PlanTree {
        if i == j {
            return PlanTree::Scan {
                rel: order[i] as u32,
                rows: rows[i][i],
                cost: cost[i][i],
            };
        }
        let k = split[i][j];
        let lo = build(i, k, order, rows, cost, split, swapped);
        let hi = build(k + 1, j, order, rows, cost, split, swapped);
        let (l, r) = if swapped[i][j] { (hi, lo) } else { (lo, hi) };
        PlanTree::Join {
            left: Box::new(l),
            right: Box::new(r),
            rows: rows[i][j],
            cost: cost[i][j],
        }
    }
    let plan = build(0, n - 1, order, &rows, &cost, &split, &swapped);
    Ok(LargeOptResult {
        cost: plan.cost(),
        rows: plan.rows(),
        plan,
    })
}

/// The adaptive LinDP optimizer.
#[derive(Copy, Clone, Debug)]
pub struct LinDp {
    /// Below this size use exact DPCCP (paper default: 14).
    pub exact_threshold: usize,
    /// Above this size use IDP2 with linearized-DP blocks (paper default:
    /// 100).
    pub idp_threshold: usize,
}

impl Default for LinDp {
    fn default() -> Self {
        LinDp {
            exact_threshold: 14,
            idp_threshold: 100,
        }
    }
}

/// Linearized DP on one query: IKKBZ order, then interval DP.
pub fn linearized_dp(
    q: &LargeQuery,
    model: &dyn CostModel,
    budget: &Budget,
) -> Result<LargeOptResult, OptError> {
    let order = Ikkbz::best_order(q, model, budget)?;
    interval_dp(q, &order, model, budget)
}

impl LargeOptimizer for LinDp {
    fn name(&self) -> String {
        "LinDP".into()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let b = Budget::new(budget);
        let n = q.num_rels();
        if n < self.exact_threshold && n <= 64 {
            // Exact DPCCP.
            let qi = q
                .to_query_info()
                .ok_or(OptError::TooLarge { got: n, max: 64 })?;
            let ctx = mpdp_dp::common::OptContext::new(&qi, model);
            let r = mpdp_dp::dpccp::DpCcp::run(&ctx)?;
            return Ok(LargeOptResult {
                cost: r.cost,
                rows: r.rows,
                plan: r.plan,
            });
        }
        if n <= self.idp_threshold {
            return linearized_dp(q, model, &b);
        }
        // IDP2 with linearized-DP blocks of up to `idp_threshold` relations.
        let inner = |sub: &LargeQuery| -> Result<PlanTree, OptError> {
            Ok(linearized_dp(sub, model, &b)?.plan)
        };
        let plan = idp2_with_inner(q, model, self.idp_threshold, &inner, &b)?;
        Ok(LargeOptResult {
            cost: plan.cost(),
            rows: plan.rows(),
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::large::validate_large;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn interval_dp_on_chain_is_exact() {
        // For a chain whose order equals the chain, every connected set is
        // an interval, so interval DP covers the full bushy space.
        let m = PgLikeCost::new();
        let q = gen::chain(8, 3, &m);
        let order: Vec<usize> = (0..8).collect();
        let b = Budget::new(None);
        let r = interval_dp(&q, &order, &m, &b).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((r.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
        assert!(validate_large(&r.plan, &q).is_none());
    }

    #[test]
    fn interval_dp_never_beats_exact() {
        let m = PgLikeCost::new();
        for seed in 0..4 {
            let q = gen::random_connected(9, 3, seed, &m);
            let b = Budget::new(None);
            let r = linearized_dp(&q, &m, &b).unwrap();
            let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
            assert!(r.cost >= exact.cost * (1.0 - 1e-9), "seed {seed}");
            assert!(validate_large(&r.plan, &q).is_none());
        }
    }

    #[test]
    fn lindp_at_least_as_good_as_ikkbz() {
        // Interval DP searches a superset of the left-deep plans over the
        // same order.
        let m = PgLikeCost::new();
        for q in [gen::star(20, 2, &m), gen::snowflake(40, 4, 3, &m)] {
            let lin = LinDp::default().optimize(&q, &m, None).unwrap();
            let ik = Ikkbz::run(&q, &m, None).unwrap();
            assert!(lin.cost <= ik.cost * (1.0 + 1e-9));
        }
    }

    #[test]
    fn adaptive_small_uses_exact() {
        let m = PgLikeCost::new();
        let q = gen::cycle(8, 1, &m);
        let lin = LinDp::default().optimize(&q, &m, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!((lin.cost - exact.cost).abs() < 1e-6 * exact.cost.max(1.0));
    }

    #[test]
    fn adaptive_large_uses_idp_blocks() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(150, 4, 8, &m);
        let r = LinDp::default()
            .optimize(&q, &m, Some(Duration::from_secs(120)))
            .unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
        assert_eq!(r.plan.num_rels(), 150);
    }
}
