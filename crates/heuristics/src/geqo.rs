//! GE-QO — genetic join-order optimization (PostgreSQL's `geqo` \[36\]).
//!
//! PostgreSQL falls back to a genetic algorithm beyond
//! `geqo_threshold` (12) relations. Individuals are relation permutations;
//! fitness is the cost of the plan grown from the permutation with
//! PostgreSQL's `gimme_tree` clumping procedure (scan the permutation,
//! joining each relation into the first clump it connects to — no cross
//! products); recombination is edge-recombination crossover (ERX), the PG
//! default; evolution is steady-state (each generation breeds one child that
//! replaces the worst individual), also as in PostgreSQL.

use crate::large::{validate_large, Budget, LargeOptResult, LargeOptimizer};
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use mpdp_core::OptError;
use mpdp_cost::model::{CostModel, InputEst};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// GE-QO parameters (PostgreSQL-like defaults).
#[derive(Copy, Clone, Debug)]
pub struct GeqoParams {
    /// Population size; PG uses `2^(1 + log2(n))`-ish pools, clamped.
    pub pool_size: usize,
    /// Number of generations (PG default: equal to pool size × effort).
    pub generations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeqoParams {
    /// PostgreSQL-flavoured defaults for an `n`-relation query.
    pub fn for_query(n: usize, seed: u64) -> Self {
        let pool = (2 * n).clamp(16, 128);
        GeqoParams {
            pool_size: pool,
            generations: pool * 4,
            seed,
        }
    }
}

/// The GE-QO optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Geqo {
    /// Algorithm parameters (`None` = PostgreSQL-flavoured defaults).
    pub params: Option<GeqoParams>,
}

/// Grows a plan from a permutation with PG's clump procedure. Returns `None`
/// only for disconnected queries.
fn gimme_tree(q: &LargeQuery, perm: &[usize], model: &dyn CostModel) -> Option<PlanTree> {
    // Clumps of (plan, member-mask as Vec<bool>).
    struct Clump {
        plan: PlanTree,
        members: Vec<bool>,
    }
    let n = q.num_rels();
    let mut clumps: Vec<Clump> = Vec::new();
    for &r in perm {
        let scan = PlanTree::Scan {
            rel: r as u32,
            rows: q.rels[r].rows,
            cost: q.rels[r].cost,
        };
        let mut members = vec![false; n];
        members[r] = true;
        let mut new_clump = Clump {
            plan: scan,
            members,
        };
        // Try to join the new clump into an existing one; repeat because a
        // merge may connect previously separate clumps.
        loop {
            let mut joined_with: Option<usize> = None;
            for (ci, c) in clumps.iter().enumerate() {
                // Connected?
                let mut sel = 1.0;
                let mut connected = false;
                for e in &q.edges {
                    let (u, v) = (e.u as usize, e.v as usize);
                    if (c.members[u] && new_clump.members[v])
                        || (c.members[v] && new_clump.members[u])
                    {
                        sel *= e.sel;
                        connected = true;
                    }
                }
                if !connected {
                    continue;
                }
                let rows = c.plan.rows() * new_clump.plan.rows() * sel;
                let cost = model.join_cost(
                    InputEst {
                        cost: c.plan.cost(),
                        rows: c.plan.rows(),
                    },
                    InputEst {
                        cost: new_clump.plan.cost(),
                        rows: new_clump.plan.rows(),
                    },
                    rows,
                );
                joined_with = Some(ci);
                // Build merged clump (old clump as left input, PG-style).
                let old = &clumps[ci];
                let mut members = old.members.clone();
                for (i, &m) in new_clump.members.iter().enumerate() {
                    members[i] = members[i] || m;
                }
                new_clump = Clump {
                    plan: PlanTree::Join {
                        left: Box::new(old.plan.clone()),
                        right: Box::new(new_clump.plan),
                        rows,
                        cost,
                    },
                    members,
                };
                break;
            }
            match joined_with {
                Some(ci) => {
                    clumps.swap_remove(ci);
                }
                None => break,
            }
        }
        clumps.push(new_clump);
    }
    if clumps.len() == 1 {
        Some(clumps.pop().unwrap().plan)
    } else {
        None
    }
}

/// Edge-recombination crossover: builds a child permutation preferring
/// neighbours shared by the parents (the PG `gimme_edge_table` scheme,
/// simplified).
fn erx(a: &[usize], b: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let n = a.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add = |edges: &mut Vec<Vec<usize>>, p: &[usize]| {
        for i in 0..n {
            let x = p[i];
            let prev = p[(i + n - 1) % n];
            let next = p[(i + 1) % n];
            for y in [prev, next] {
                if !edges[x].contains(&y) {
                    edges[x].push(y);
                }
            }
        }
    };
    add(&mut edges, a);
    add(&mut edges, b);
    let mut used = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut cur = a[0];
    loop {
        out.push(cur);
        used[cur] = true;
        if out.len() == n {
            break;
        }
        // Next: unused neighbour with fewest remaining neighbours; random
        // unused fallback.
        let mut cand: Option<(usize, usize)> = None;
        for &nb in &edges[cur] {
            if used[nb] {
                continue;
            }
            let degree = edges[nb].iter().filter(|&&x| !used[x]).count();
            match cand {
                Some((_, d)) if d <= degree => {}
                _ => cand = Some((nb, degree)),
            }
        }
        cur = match cand {
            Some((nb, _)) => nb,
            None => {
                let unused: Vec<usize> = (0..n).filter(|&i| !used[i]).collect();
                *unused.choose(rng).unwrap()
            }
        };
    }
    out
}

impl Geqo {
    /// Runs GE-QO.
    pub fn run(
        q: &LargeQuery,
        model: &dyn CostModel,
        params: GeqoParams,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let n = q.num_rels();
        if n == 0 {
            return Err(OptError::EmptyQuery);
        }
        if !q.is_connected() {
            return Err(OptError::DisconnectedGraph);
        }
        let timer = Budget::new(budget);
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x4745_514f);

        // Initial pool: random permutations.
        let base: Vec<usize> = (0..n).collect();
        let mut pool: Vec<(f64, Vec<usize>)> = Vec::with_capacity(params.pool_size);
        for _ in 0..params.pool_size.max(2) {
            timer.check()?;
            let mut p = base.clone();
            p.shuffle(&mut rng);
            let plan = gimme_tree(q, &p, model).ok_or(OptError::Internal(
                "gimme_tree failed on connected query".into(),
            ))?;
            pool.push((plan.cost(), p));
        }
        pool.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());

        // Steady-state evolution.
        for _ in 0..params.generations {
            timer.check()?;
            // Rank-biased parent selection (PG's linear bias).
            let pick = |rng: &mut StdRng| -> usize {
                let r: f64 = rng.gen::<f64>();
                ((r * r) * pool.len() as f64) as usize
            };
            let (i, j) = (pick(&mut rng), pick(&mut rng));
            let child = erx(&pool[i].1.clone(), &pool[j].1.clone(), &mut rng);
            let plan = gimme_tree(q, &child, model)
                .ok_or(OptError::Internal("gimme_tree failed on child".into()))?;
            let cost = plan.cost();
            // Replace the worst if the child improves on it.
            if cost < pool.last().unwrap().0 {
                pool.pop();
                let pos = pool
                    .binary_search_by(|e| e.0.partial_cmp(&cost).unwrap())
                    .unwrap_or_else(|p| p);
                pool.insert(pos, (cost, child));
            }
        }
        let best = &pool[0];
        let plan = gimme_tree(q, &best.1, model).expect("best individual must build");
        Ok(LargeOptResult {
            cost: plan.cost(),
            rows: plan.rows(),
            plan,
        })
    }
}

impl LargeOptimizer for Geqo {
    fn name(&self) -> String {
        "GE-QO".into()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let params = self
            .params
            .unwrap_or_else(|| GeqoParams::for_query(q.num_rels(), 0x5147));
        let r = Geqo::run(q, model, params, budget)?;
        debug_assert!(validate_large(&r.plan, q).is_none());
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn produces_valid_plans() {
        let m = PgLikeCost::new();
        for q in [
            gen::star(15, 1, &m),
            gen::snowflake(25, 3, 2, &m),
            gen::cycle(12, 3, &m),
        ] {
            let r = Geqo::default().optimize(&q, &m, None).unwrap();
            assert!(validate_large(&r.plan, &q).is_none());
            assert_eq!(r.plan.num_rels(), q.num_rels());
        }
    }

    #[test]
    fn never_beats_exact() {
        let m = PgLikeCost::new();
        for seed in 0..3 {
            let q = gen::random_connected(9, 3, seed, &m);
            let r = Geqo::default().optimize(&q, &m, None).unwrap();
            let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
            assert!(r.cost >= exact.cost * (1.0 - 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn evolution_not_worse_than_initial_random() {
        // The pool's best can only improve over generations.
        let m = PgLikeCost::new();
        let q = gen::star(20, 7, &m);
        let short = Geqo::run(
            &q,
            &m,
            GeqoParams {
                pool_size: 32,
                generations: 0,
                seed: 5,
            },
            None,
        )
        .unwrap();
        let long = Geqo::run(
            &q,
            &m,
            GeqoParams {
                pool_size: 32,
                generations: 256,
                seed: 5,
            },
            None,
        )
        .unwrap();
        assert!(long.cost <= short.cost * (1.0 + 1e-12));
    }

    #[test]
    fn erx_produces_permutations() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<usize> = vec![0, 1, 2, 3, 4, 5];
        let b: Vec<usize> = vec![5, 3, 1, 0, 2, 4];
        for _ in 0..20 {
            let c = erx(&a, &b, &mut rng);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, a);
        }
    }

    #[test]
    fn gimme_tree_respects_connectivity() {
        let m = PgLikeCost::new();
        let q = gen::chain(6, 4, &m);
        // Adversarial permutation: ends before middles.
        let p = vec![0, 5, 2, 4, 1, 3];
        let plan = gimme_tree(&q, &p, &m).unwrap();
        assert!(validate_large(&plan, &q).is_none());
    }
}
