//! # mpdp-heuristics
//!
//! Heuristic join-order optimizers for queries beyond exact-DP reach
//! (the paper evaluates up to 1000 relations, Tables 1–2):
//!
//! * [`goo::Goo`] — Greedy Operator Ordering \[8\];
//! * [`ikkbz::Ikkbz`] — optimal left-deep ordering \[14, 18\];
//! * [`lindp::LinDp`] — linearized DP and the adaptive strategy of \[26\];
//! * [`geqo::Geqo`] — PostgreSQL's genetic optimizer \[36\];
//! * [`idp`] — IDP1 and IDP2 \[17\], with MPDP as the plugged-in exact step
//!   ("IDP2-MPDP (k)");
//! * [`uniondp::UnionDp`] — the paper's novel partition-based heuristic
//!   (§4.2), "UnionDP-MPDP (k)".
//!
//! Everything is built on [`large`]'s shared machinery: plan validation,
//! re-costing, graph contraction and composite substitution.

#![warn(missing_docs)]

pub mod geqo;
pub mod goo;
pub mod idp;
pub mod ikkbz;
pub mod large;
pub mod lindp;
pub mod uniondp;
pub mod unionfind;

pub use geqo::{Geqo, GeqoParams};
pub use goo::Goo;
pub use idp::{idp1_mpdp, idp2_mpdp, idp2_with_inner, Idp2};
pub use ikkbz::Ikkbz;
pub use large::{recost, validate_large, Budget, InnerLarge, LargeOptResult, LargeOptimizer};
pub use lindp::{interval_dp, linearized_dp, LinDp};
pub use uniondp::{uniondp_with_inner, UnionDp, UnionDpWith};
pub use unionfind::UnionFind;
