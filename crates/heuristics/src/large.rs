//! Shared infrastructure for the heuristic (large-query) optimizers:
//! results, validation, re-costing, graph contraction and the exact-DP
//! plug-in interface.

use mpdp_core::plan::PlanTree;
use mpdp_core::query::{LargeQuery, QueryInfo, RelInfo};
use mpdp_core::{BigSet, OptError};
use mpdp_cost::model::{CostModel, InputEst};
use std::time::{Duration, Instant};

/// Result of a heuristic optimization over a [`LargeQuery`].
#[derive(Clone, Debug)]
pub struct LargeOptResult {
    /// The plan (scan leaves carry *original* relation indices).
    pub plan: PlanTree,
    /// Plan cost under the run's cost model.
    pub cost: f64,
    /// Estimated output rows of the full join.
    pub rows: f64,
}

/// A heuristic join-order optimizer for arbitrarily large queries.
pub trait LargeOptimizer {
    /// Identifier used in Tables 1–2 (e.g. `"GOO"`, `"UnionDP-MPDP (15)"`).
    fn name(&self) -> String;

    /// Runs the optimization with an optional time budget.
    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError>;
}

/// The exact plug-in used inside IDP2, UnionDP and adaptive LinDP: takes a
/// *projected* sub-problem (scan indices `0..len`) and returns its plan.
/// MPDP inners require ≤ 64 relations; linearized-DP inners take any size.
pub type InnerLarge<'a> = &'a (dyn Fn(&LargeQuery) -> Result<PlanTree, OptError> + Sync);

/// The default inner exact algorithm: MPDP (the paper augments both IDP2 and
/// UnionDP with MPDP).
pub fn mpdp_inner(
    model: &dyn CostModel,
) -> impl Fn(&LargeQuery) -> Result<PlanTree, OptError> + '_ {
    move |q: &LargeQuery| {
        let qi: QueryInfo = q.to_query_info().ok_or(OptError::TooLarge {
            got: q.num_rels(),
            max: 64,
        })?;
        let ctx = mpdp_dp::common::OptContext::new(&qi, model);
        Ok(mpdp_dp::mpdp::Mpdp::run(&ctx)?.plan)
    }
}

/// Like [`mpdp_inner`] but bounded by an outer budget's deadline.
pub fn mpdp_inner_with_budget<'a>(
    model: &'a dyn CostModel,
    b: &'a Budget,
) -> impl Fn(&LargeQuery) -> Result<PlanTree, OptError> + 'a {
    move |q: &LargeQuery| {
        let qi: QueryInfo = q.to_query_info().ok_or(OptError::TooLarge {
            got: q.num_rels(),
            max: 64,
        })?;
        let ctx = mpdp_dp::common::OptContext {
            query: &qi,
            model,
            deadline: b.deadline(),
            budget: b.budget(),
            enumeration: mpdp_core::enumerate::EnumerationMode::default(),
        };
        Ok(mpdp_dp::mpdp::Mpdp::run(&ctx)?.plan)
    }
}

/// Deadline helper for heuristics.
#[derive(Copy, Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    budget: Option<Duration>,
}

impl Budget {
    /// Creates a budget starting now (or unlimited when `None`).
    pub fn new(budget: Option<Duration>) -> Self {
        Budget {
            deadline: budget.map(|b| Instant::now() + b),
            budget,
        }
    }

    /// The absolute deadline, if any (for propagating into inner exact
    /// optimizer contexts so sub-problems also respect the budget).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Errors with [`OptError::Timeout`] once exceeded.
    pub fn check(&self) -> Result<(), OptError> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(OptError::Timeout {
                    budget: self.budget.unwrap_or_default(),
                });
            }
        }
        Ok(())
    }
}

/// Replaces every `Scan { rel: i }` leaf of `plan` by `mapping[i]`
/// (clone-substitution used when translating a projected sub-plan back to
/// original relation indices).
pub fn substitute_leaves(plan: &PlanTree, mapping: &[PlanTree]) -> PlanTree {
    match plan {
        PlanTree::Scan { rel, .. } => mapping[*rel as usize].clone(),
        PlanTree::Join {
            left,
            right,
            rows,
            cost,
        } => PlanTree::Join {
            left: Box::new(substitute_leaves(left, mapping)),
            right: Box::new(substitute_leaves(right, mapping)),
            rows: *rows,
            cost: *cost,
        },
    }
}

/// Collects the original relation indices covered by a plan.
pub fn plan_rels(plan: &PlanTree, out: &mut BigSet) {
    match plan {
        PlanTree::Scan { rel, .. } => {
            out.insert(*rel as usize);
        }
        PlanTree::Join { left, right, .. } => {
            plan_rels(left, out);
            plan_rels(right, out);
        }
    }
}

/// Validates a large-query plan: every relation appears exactly once, every
/// join's sides are connected to each other (no cross products), and the
/// plan covers the whole query.
pub fn validate_large(plan: &PlanTree, q: &LargeQuery) -> Option<String> {
    fn rec(plan: &PlanTree, q: &LargeQuery) -> Result<BigSet, String> {
        match plan {
            PlanTree::Scan { rel, .. } => {
                if (*rel as usize) >= q.num_rels() {
                    return Err(format!("scan of unknown relation {rel}"));
                }
                Ok(BigSet::singleton(*rel as usize))
            }
            PlanTree::Join { left, right, .. } => {
                let ls = rec(left, q)?;
                let rs = rec(right, q)?;
                if !ls.is_disjoint(&rs) {
                    return Err("join inputs overlap".into());
                }
                let connected = q.edges.iter().any(|e| {
                    (ls.contains(e.u as usize) && rs.contains(e.v as usize))
                        || (ls.contains(e.v as usize) && rs.contains(e.u as usize))
                });
                if !connected {
                    return Err("cross product in plan".into());
                }
                Ok(ls.union(&rs))
            }
        }
    }
    match rec(plan, q) {
        Err(e) => Some(e),
        Ok(covered) => {
            if covered.len() != q.num_rels() {
                Some(format!(
                    "plan covers {} of {} relations",
                    covered.len(),
                    q.num_rels()
                ))
            } else {
                None
            }
        }
    }
}

/// Recomputes a plan's cost and cardinality from scratch against the original
/// query and cost model (used to make heuristic costs comparable regardless
/// of how the plan was assembled).
pub fn recost(plan: &PlanTree, q: &LargeQuery, model: &dyn CostModel) -> PlanTree {
    fn rec(plan: &PlanTree, q: &LargeQuery, model: &dyn CostModel) -> (PlanTree, BigSet) {
        match plan {
            PlanTree::Scan { rel, .. } => {
                let info = q.rels[*rel as usize];
                (
                    PlanTree::Scan {
                        rel: *rel,
                        rows: info.rows,
                        cost: info.cost,
                    },
                    BigSet::singleton(*rel as usize),
                )
            }
            PlanTree::Join { left, right, .. } => {
                let (l, ls) = rec(left, q, model);
                let (r, rs) = rec(right, q, model);
                let mut sel = 1.0;
                for e in &q.edges {
                    let (u, v) = (e.u as usize, e.v as usize);
                    if (ls.contains(u) && rs.contains(v)) || (ls.contains(v) && rs.contains(u)) {
                        sel *= e.sel;
                    }
                }
                let rows = l.rows() * r.rows() * sel;
                let cost = model.join_cost(
                    InputEst {
                        cost: l.cost(),
                        rows: l.rows(),
                    },
                    InputEst {
                        cost: r.cost(),
                        rows: r.rows(),
                    },
                    rows,
                );
                let set = ls.union(&rs);
                (
                    PlanTree::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        rows,
                        cost,
                    },
                    set,
                )
            }
        }
    }
    rec(plan, q, model).0
}

/// Contracts a group of vertices of `q` into one composite vertex.
///
/// Returns the contracted query and the mapping `old index → new index`
/// (`usize::MAX` for contracted members; the composite gets the index
/// `mapping[group\[0\]]`). Edges from group members to an outside vertex merge
/// multiplicatively; edges inside the group disappear.
pub fn contract(q: &LargeQuery, group: &[usize], composite: RelInfo) -> (LargeQuery, Vec<usize>) {
    let n = q.num_rels();
    let mut in_group = vec![false; n];
    for &g in group {
        in_group[g] = true;
    }
    let mut mapping = vec![usize::MAX; n];
    let mut rels: Vec<RelInfo> = Vec::with_capacity(n - group.len() + 1);
    for (old, &ing) in in_group.iter().enumerate() {
        if !ing {
            mapping[old] = rels.len();
            rels.push(q.rels[old]);
        }
    }
    let comp_idx = rels.len();
    rels.push(composite);
    for &g in group {
        mapping[g] = comp_idx;
    }
    let mut out = LargeQuery::new(rels);
    for e in &q.edges {
        let (nu, nv) = (mapping[e.u as usize], mapping[e.v as usize]);
        if nu == nv {
            continue; // edge inside the group
        }
        out.add_edge(nu, nv, e.sel);
    }
    (out, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_workload::gen;

    fn scan(rel: u32, rows: f64) -> PlanTree {
        PlanTree::Scan {
            rel,
            rows,
            cost: 1.0,
        }
    }

    fn join(l: PlanTree, r: PlanTree) -> PlanTree {
        PlanTree::Join {
            rows: l.rows() * r.rows(),
            cost: 0.0,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn validate_large_accepts_good_plan() {
        let m = PgLikeCost::new();
        let q = gen::chain(3, 1, &m);
        let p = join(join(scan(0, 1.0), scan(1, 1.0)), scan(2, 1.0));
        assert!(validate_large(&p, &q).is_none());
    }

    #[test]
    fn validate_large_rejects_cross_product_and_partial_cover() {
        let m = PgLikeCost::new();
        let q = gen::chain(4, 1, &m);
        // 0-1, then join with 3 (no edge 0/1 - 3).
        let cross = join(join(scan(0, 1.0), scan(1, 1.0)), scan(3, 1.0));
        assert!(validate_large(&cross, &q)
            .unwrap()
            .contains("cross product"));
        let partial = join(scan(0, 1.0), scan(1, 1.0));
        assert!(validate_large(&partial, &q).unwrap().contains("covers"));
        let dup = join(join(scan(0, 1.0), scan(1, 1.0)), scan(1, 1.0));
        assert!(validate_large(&dup, &q).is_some());
    }

    #[test]
    fn recost_matches_exact_dp_cost() {
        // Recosting the exact optimizer's plan must reproduce its cost.
        let m = PgLikeCost::new();
        let lq = gen::cycle(6, 3, &m);
        let q = lq.to_query_info().unwrap();
        let ctx = mpdp_dp::common::OptContext::new(&q, &m);
        let r = mpdp_dp::mpdp::Mpdp::run(&ctx).unwrap();
        let re = recost(&r.plan, &lq, &m);
        assert!((re.cost() - r.cost).abs() < 1e-6 * r.cost.max(1.0));
        assert!((re.rows() - r.rows).abs() < 1e-6 * r.rows.max(1.0));
    }

    #[test]
    fn substitute_replaces_leaves() {
        let inner = join(scan(0, 1.0), scan(1, 1.0));
        let mapping = vec![scan(7, 2.0), join(scan(3, 1.0), scan(4, 1.0))];
        let out = substitute_leaves(&inner, &mapping);
        let mut set = BigSet::new();
        plan_rels(&out, &mut set);
        let v: Vec<usize> = set.iter().collect();
        assert_eq!(v, vec![3, 4, 7]);
    }

    #[test]
    fn contract_merges_edges() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(10.0, 1.0); 4]);
        q.add_edge(0, 1, 0.5);
        q.add_edge(0, 2, 0.1);
        q.add_edge(1, 2, 0.2);
        q.add_edge(2, 3, 0.3);
        let _ = m;
        let (c, mapping) = contract(&q, &[0, 1], RelInfo::new(50.0, 9.0));
        assert_eq!(c.num_rels(), 3);
        // Composite index is last.
        let comp = mapping[0];
        assert_eq!(comp, mapping[1]);
        assert_eq!(c.rels[comp].rows, 50.0);
        // Edges comp-2 merged: 0.1 * 0.2 = 0.02.
        let sel_c2: f64 = c
            .edges
            .iter()
            .filter(|e| {
                (e.u as usize, e.v as usize) == (mapping[2].min(comp), mapping[2].max(comp))
            })
            .map(|e| e.sel)
            .product();
        assert!((sel_c2 - 0.02).abs() < 1e-12);
        // Edge 2-3 survives with its selectivity.
        let sel_23: f64 = c
            .edges
            .iter()
            .filter(|e| {
                (e.u as usize, e.v as usize)
                    == (mapping[2].min(mapping[3]), mapping[2].max(mapping[3]))
            })
            .map(|e| e.sel)
            .product();
        assert!((sel_23 - 0.3).abs() < 1e-12);
        assert_eq!(c.edges.len(), 2);
    }
}
