//! IKKBZ — optimal left-deep ordering for acyclic join graphs
//! (Ibaraki–Kameda \[14\], Krishnamurthy–Boral–Zaniolo \[18\]).
//!
//! For a rooted precedence tree the algorithm linearizes subtrees into chains
//! ordered by *rank* `(T − 1) / C`, merging adjacent groups whenever
//! precedence forces a higher-rank group before a lower-rank one. Under the
//! `C_out`-style recursive cost model this yields the optimal left-deep order
//! for each root in `O(n log n)`; trying all roots gives `O(n² log n)`.
//!
//! Per the paper (§7.3) IKKBZ "uses the C_out cost function to estimate the
//! best left-deep join order"; the resulting order is then priced with the
//! evaluation cost model so Tables 1–2 compare like with like. Cyclic graphs
//! are handled the way LinDP's authors do: run IKKBZ on a maximum-selectivity
//! (minimum `sel` value, i.e. most selective) spanning tree and keep all real
//! edges for pricing.

use crate::large::{Budget, LargeOptResult, LargeOptimizer};
use crate::unionfind::UnionFind;
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use mpdp_core::OptError;
use mpdp_cost::model::{CostModel, InputEst};
use std::time::Duration;

/// A chain group of relations with its compound `T`, `C` and rank.
#[derive(Clone, Debug)]
struct Group {
    rels: Vec<usize>,
    t: f64,
    c: f64,
}

impl Group {
    fn single(rel: usize, t: f64) -> Self {
        Group {
            rels: vec![rel],
            t,
            c: t.max(f64::MIN_POSITIVE),
        }
    }

    fn rank(&self) -> f64 {
        (self.t - 1.0) / self.c
    }

    fn merge(&mut self, next: Group) {
        // C(AB) = C(A) + T(A)·C(B); T(AB) = T(A)·T(B).
        self.c += self.t * next.c;
        self.t *= next.t;
        self.rels.extend(next.rels);
    }
}

/// Normalizes a sequence so ranks ascend, merging groups whose successor has
/// a smaller rank (precedence-forced merges).
fn normalize(mut seq: Vec<Group>) -> Vec<Group> {
    let mut i = 0usize;
    while i + 1 < seq.len() {
        if seq[i].rank() > seq[i + 1].rank() + 1e-15 {
            let next = seq.remove(i + 1);
            seq[i].merge(next);
            // Step back: the merge may have violated the predecessor's rank.
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }
    seq
}

/// Stable merge of independent ascending chains by rank.
fn merge_chains(chains: Vec<Vec<Group>>) -> Vec<Group> {
    let mut all: Vec<Group> = chains.into_iter().flatten().collect();
    all.sort_by(|a, b| a.rank().partial_cmp(&b.rank()).unwrap());
    all
}

/// Spanning tree of a (possibly cyclic) query, preferring the most selective
/// edges. Returns `children`/`parent_sel` arrays for the root-free tree as an
/// adjacency list of `(neighbor, sel)`.
fn spanning_tree(q: &LargeQuery) -> Vec<Vec<(usize, f64)>> {
    let mut edges: Vec<(f64, usize, usize)> = q
        .edges
        .iter()
        .map(|e| (e.sel, e.u as usize, e.v as usize))
        .collect();
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut uf = UnionFind::new(q.num_rels());
    let mut adj = vec![Vec::new(); q.num_rels()];
    for (sel, u, v) in edges {
        if uf.union(u, v) {
            adj[u].push((v, sel));
            adj[v].push((u, sel));
        }
    }
    adj
}

/// Linearizes the subtree rooted at `v` (excluding `v`'s own placement
/// constraints above it): returns an ascending-rank group sequence whose
/// relations must all come after `v`.
fn linearize(v: usize, parent: usize, tree: &[Vec<(usize, f64)>], rows: &[f64]) -> Vec<Group> {
    let mut chains: Vec<Vec<Group>> = Vec::new();
    for &(c, sel) in &tree[v] {
        if c == parent {
            continue;
        }
        let mut chain = vec![Group::single(c, sel * rows[c])];
        chain.extend(linearize(c, v, tree, rows));
        chains.push(normalize(chain));
    }
    normalize(merge_chains(chains))
}

/// Computes the left-deep order for a given root.
fn order_for_root(root: usize, tree: &[Vec<(usize, f64)>], rows: &[f64]) -> Vec<usize> {
    let mut order = vec![root];
    for g in linearize(root, usize::MAX, tree, rows) {
        order.extend(g.rels);
    }
    order
}

/// Prices a left-deep order under the real cost model with *all* original
/// edges (selectivities applied once both endpoints are in the prefix).
/// Returns `None` if the order implies a cross product.
pub fn cost_left_deep(
    q: &LargeQuery,
    order: &[usize],
    model: &dyn CostModel,
) -> Option<LargeOptResult> {
    let mut in_prefix = vec![false; q.num_rels()];
    let first = *order.first()?;
    let mut plan = PlanTree::Scan {
        rel: first as u32,
        rows: q.rels[first].rows,
        cost: q.rels[first].cost,
    };
    in_prefix[first] = true;
    for &v in &order[1..] {
        let mut sel = 1.0;
        let mut connected = false;
        for &(w, s) in &q.adj[v] {
            if in_prefix[w as usize] {
                sel *= s;
                connected = true;
            }
        }
        if !connected {
            return None;
        }
        let right = PlanTree::Scan {
            rel: v as u32,
            rows: q.rels[v].rows,
            cost: q.rels[v].cost,
        };
        let rows = plan.rows() * right.rows() * sel;
        let cost = model.join_cost(
            InputEst {
                cost: plan.cost(),
                rows: plan.rows(),
            },
            InputEst {
                cost: right.cost(),
                rows: right.rows(),
            },
            rows,
        );
        plan = PlanTree::Join {
            left: Box::new(plan),
            right: Box::new(right),
            rows,
            cost,
        };
        in_prefix[v] = true;
    }
    Some(LargeOptResult {
        cost: plan.cost(),
        rows: plan.rows(),
        plan,
    })
}

/// The IKKBZ optimizer.
#[derive(Copy, Clone, Debug, Default)]
pub struct Ikkbz;

impl Ikkbz {
    /// Returns the best left-deep *order* (for LinDP's linearization step).
    pub fn best_order(
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: &Budget,
    ) -> Result<Vec<usize>, OptError> {
        let n = q.num_rels();
        if n == 0 {
            return Err(OptError::EmptyQuery);
        }
        if !q.is_connected() {
            return Err(OptError::DisconnectedGraph);
        }
        if n == 1 {
            return Ok(vec![0]);
        }
        let tree = spanning_tree(q);
        let rows: Vec<f64> = q.rels.iter().map(|r| r.rows).collect();
        let mut best: Option<(f64, Vec<usize>)> = None;
        for root in 0..n {
            budget.check()?;
            let order = order_for_root(root, &tree, &rows);
            debug_assert_eq!(order.len(), n);
            if let Some(r) = cost_left_deep(q, &order, model) {
                match &best {
                    Some((c, _)) if *c <= r.cost => {}
                    _ => best = Some((r.cost, order)),
                }
            }
        }
        best.map(|(_, o)| o)
            .ok_or_else(|| OptError::Internal("IKKBZ found no valid order".into()))
    }

    /// Runs IKKBZ, returning the best left-deep plan.
    pub fn run(
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        let b = Budget::new(budget);
        let order = Self::best_order(q, model, &b)?;
        cost_left_deep(q, &order, model)
            .ok_or_else(|| OptError::Internal("IKKBZ order not connected".into()))
    }
}

impl LargeOptimizer for Ikkbz {
    fn name(&self) -> String {
        "IKKBZ".into()
    }

    fn optimize(
        &self,
        q: &LargeQuery,
        model: &dyn CostModel,
        budget: Option<Duration>,
    ) -> Result<LargeOptResult, OptError> {
        Ikkbz::run(q, model, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::large::validate_large;
    use mpdp_cost::pglike::PgLikeCost;
    use mpdp_dp::common::OptContext;
    use mpdp_dp::mpdp::Mpdp;
    use mpdp_workload::gen;

    #[test]
    fn produces_valid_left_deep_plans() {
        let m = PgLikeCost::new();
        for q in [
            gen::star(15, 1, &m),
            gen::snowflake(30, 3, 2, &m),
            gen::chain(20, 3, &m),
            gen::cycle(12, 4, &m),
        ] {
            let r = Ikkbz::run(&q, &m, None).unwrap();
            assert!(validate_large(&r.plan, &q).is_none());
            assert!(r.plan.is_left_deep());
            assert_eq!(r.plan.num_rels(), q.num_rels());
        }
    }

    #[test]
    fn never_beats_exact_bushy() {
        let m = PgLikeCost::new();
        for seed in 0..5 {
            let q = gen::random_connected(9, 2, seed, &m);
            let ik = Ikkbz::run(&q, &m, None).unwrap();
            let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
            assert!(ik.cost >= exact.cost * (1.0 - 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn optimal_on_two_and_three_chain() {
        // For tiny chains the optimal plan is left-deep, so IKKBZ should be
        // close to exact (it optimizes under Cout-style ranks, then prices
        // with the real model — allow small slack).
        let m = PgLikeCost::new();
        let q = gen::chain(3, 7, &m);
        let ik = Ikkbz::run(&q, &m, None).unwrap();
        let exact = Mpdp::run(&OptContext::new(&q.to_query_info().unwrap(), &m)).unwrap();
        assert!(ik.cost <= exact.cost * 2.0 + 1e-9);
    }

    #[test]
    fn rank_merge_math() {
        let mut a = Group::single(1, 4.0); // T=4, C=4, rank=0.75
        let b = Group::single(2, 2.0); // T=2, C=2, rank=0.5
        assert!(a.rank() > b.rank());
        a.merge(b);
        // T=8, C=4+4*2=12, rank=(8-1)/12
        assert!((a.t - 8.0).abs() < 1e-12);
        assert!((a.c - 12.0).abs() < 1e-12);
        assert!((a.rank() - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(a.rels, vec![1, 2]);
    }

    #[test]
    fn normalize_orders_ranks() {
        let seq = vec![
            Group::single(0, 8.0), // rank 7/8
            Group::single(1, 2.0), // rank 1/2 < 7/8 -> merge
            Group::single(2, 16.0),
        ];
        let out = normalize(seq);
        for w in out.windows(2) {
            assert!(w[0].rank() <= w[1].rank() + 1e-12);
        }
        // All rels preserved.
        let total: usize = out.iter().map(|g| g.rels.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn scales_to_hundreds() {
        let m = PgLikeCost::new();
        let q = gen::snowflake(200, 4, 5, &m);
        let r = Ikkbz::run(&q, &m, Some(Duration::from_secs(60))).unwrap();
        assert!(validate_large(&r.plan, &q).is_none());
    }
}
