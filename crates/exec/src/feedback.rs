//! Cardinality feedback: observed selectivities back into the catalog.
//!
//! The estimate→observe→re-optimize loop in three steps:
//!
//! 1. [`synthesize_catalog`] lifts any [`LargeQuery`] into a real
//!    [`Catalog`] — one table per relation, one key-column pair per edge
//!    with NDVs chosen so [`Catalog::predicate_selectivity`] reproduces the
//!    query's selectivities exactly. (Workloads that already come from a
//!    catalog — e.g. `ImdbSchema::catalog()` — skip this step.)
//! 2. [`selectivity_overrides`] distills an [`ExecReport`] into per-edge
//!    observed selectivities: each join's combined observed selectivity is
//!    attributed to its crossing edges by geometric split (a join crossing
//!    `k` edges assigns each `obs^(1/k)`). Every edge fires at exactly one
//!    join node of a plan — the node where its two endpoints first meet —
//!    so the attribution is unambiguous.
//! 3. [`Catalog::set_selectivity_override`] pins those values; the next
//!    [`Catalog::build_query`] emits a corrected query, and re-planning it
//!    yields an order chosen under observed — not assumed — statistics.
//!
//! [`recost_plan`] supports the comparison at the end of the loop: it
//! re-prices an existing plan tree under a (corrected) query, so "would the
//! old order still have been chosen?" is answerable without re-running DP.

use crate::executor::ExecReport;
use mpdp_core::plan::PlanTree;
use mpdp_core::query::{LargeQuery, QueryInfo};
use mpdp_cost::catalog::{Catalog, Column, JoinPredicate, Table};
use mpdp_cost::model::{CostModel, InputEst};

/// A catalog synthesized from a query, plus the bindings needed to rebuild
/// the query from it: `table_indices[i]` backs query relation `i`, and
/// `predicates[e]` is query edge `e` as a catalog predicate.
#[derive(Clone, Debug)]
pub struct SyntheticCatalog {
    /// The synthesized catalog (tables `r0..r{n-1}`, key columns `k{e}`).
    pub catalog: Catalog,
    /// Catalog table index per query relation (the identity mapping here,
    /// kept explicit because [`Catalog::build_query`] takes it).
    pub table_indices: Vec<usize>,
    /// One predicate per query edge, in edge order.
    pub predicates: Vec<JoinPredicate>,
}

impl SyntheticCatalog {
    /// Rebuilds the query from the catalog's *current* statistics —
    /// identical to the original before any override, corrected after.
    pub fn build_query(&self, model: &dyn CostModel) -> LargeQuery {
        self.catalog
            .build_query(&self.table_indices, &self.predicates, model)
    }
}

/// Synthesizes a catalog whose derived statistics reproduce `q` exactly:
/// relation `i` becomes table `r{i}` and edge `e = (u, v, sel)` becomes a
/// column `k{e}` on both endpoint tables with NDV `round(1/sel)`.
///
/// Tables are constructed directly (not via [`Table::new`]) because an
/// edge's key domain may legitimately exceed a capped table's row count and
/// the NDV clamp would silently change the selectivity round-trip.
pub fn synthesize_catalog(q: &LargeQuery) -> SyntheticCatalog {
    let mut catalog = Catalog::new();
    let mut columns: Vec<Vec<Column>> = vec![Vec::new(); q.num_rels()];
    let mut predicates = Vec::with_capacity(q.edges.len());
    for (ei, e) in q.edges.iter().enumerate() {
        let ndv = (1.0 / e.sel).round().max(1.0);
        let name = format!("k{ei}");
        for t in [e.u as usize, e.v as usize] {
            columns[t].push(Column {
                name: name.clone(),
                ndv,
                primary_key: false,
            });
        }
        predicates.push(JoinPredicate {
            left_table: e.u as usize,
            left_col: name.clone(),
            right_table: e.v as usize,
            right_col: name,
        });
    }
    for (i, info) in q.rels.iter().enumerate() {
        catalog.add_table(Table {
            name: format!("r{i}"),
            rows: info.rows,
            columns: std::mem::take(&mut columns[i]),
        });
    }
    SyntheticCatalog {
        catalog,
        table_indices: (0..q.num_rels()).collect(),
        predicates,
    }
}

/// Distills an execution report into per-edge observed selectivities
/// `(edge index, selectivity)`, geometric-splitting joins that crossed
/// several edges. Joins with an empty input are skipped — an observation of
/// zero rows bounds nothing.
pub fn selectivity_overrides(report: &ExecReport) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for j in &report.joins {
        if j.edges.is_empty() || j.inputs.0 == 0 || j.inputs.1 == 0 || j.output == 0 {
            continue;
        }
        let per_edge = j.observed_sel.powf(1.0 / j.edges.len() as f64);
        for &ei in &j.edges {
            out.push((ei, per_edge.clamp(f64::MIN_POSITIVE, 1.0)));
        }
    }
    out
}

/// Folds [`selectivity_overrides`] of a report into the synthesized
/// catalog's override table; returns how many predicates were corrected.
pub fn fold_observations(sc: &mut SyntheticCatalog, report: &ExecReport) -> usize {
    let overrides = selectivity_overrides(report);
    for &(ei, sel) in &overrides {
        let p = sc.predicates[ei].clone();
        sc.catalog.set_selectivity_override(&p, sel);
    }
    overrides.len()
}

/// Re-prices a plan tree under a (different) query's statistics: leaf rows
/// and scan costs come from `q`, join cardinalities from the split-invariant
/// [`QueryInfo::cardinality`], and join costs from `model`. The tree shape
/// is untouched — this answers "what would this order cost under corrected
/// statistics", the comparison the feedback loop ends on.
pub fn recost_plan(plan: &PlanTree, q: &QueryInfo, model: &dyn CostModel) -> PlanTree {
    match plan {
        PlanTree::Scan { rel, .. } => {
            let info = q.rels[*rel as usize];
            PlanTree::Scan {
                rel: *rel,
                rows: info.rows,
                cost: info.cost,
            }
        }
        PlanTree::Join { left, right, .. } => {
            let l = recost_plan(left, q, model);
            let r = recost_plan(right, q, model);
            let rows = q.cardinality(l.rel_set().union(r.rel_set()));
            let cost = model.join_cost(
                InputEst {
                    cost: l.cost(),
                    rows: l.rows(),
                },
                InputEst {
                    cost: r.cost(),
                    rows: r.rows(),
                },
                rows,
            );
            PlanTree::Join {
                left: Box::new(l),
                right: Box::new(r),
                rows,
                cost,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::query::RelInfo;
    use mpdp_cost::PgLikeCost;
    use mpdp_workload::gen;

    #[test]
    fn synthesized_catalog_round_trips_selectivities() {
        let m = PgLikeCost::new();
        for q in [
            gen::chain(7, 3, &m),
            gen::star(8, 4, &m),
            gen::cycle(6, 5, &m),
        ] {
            let sc = synthesize_catalog(&q);
            let rebuilt = sc.build_query(&m);
            assert_eq!(rebuilt.num_rels(), q.num_rels());
            assert_eq!(rebuilt.edges.len(), q.edges.len());
            for (a, b) in rebuilt.edges.iter().zip(&q.edges) {
                assert_eq!((a.u, a.v), (b.u, b.v));
                // Selectivities round-trip through NDV = round(1/sel).
                let expect = 1.0 / (1.0 / b.sel).round().max(1.0);
                assert!(
                    (a.sel - expect).abs() / expect < 1e-12,
                    "edge ({}, {}): {} vs {}",
                    a.u,
                    a.v,
                    a.sel,
                    expect
                );
            }
            for (a, b) in rebuilt.rels.iter().zip(&q.rels) {
                assert_eq!(a.rows, b.rows);
            }
        }
    }

    #[test]
    fn recost_preserves_shape_and_reprices() {
        let m = PgLikeCost::new();
        let q = gen::chain(5, 9, &m);
        let qi = q.to_query_info().unwrap();
        let planned = mpdp_dp_plan(&qi, &m);
        let recosted = recost_plan(&planned, &qi, &m);
        assert_eq!(recosted.num_joins(), planned.num_joins());
        assert_eq!(recosted.rel_set(), planned.rel_set());
        // Re-pricing under the same stats reproduces rows exactly and cost
        // up to the model's determinism.
        assert!((recosted.rows() - planned.rows()).abs() <= 1e-6 * planned.rows().max(1.0));
        // Under doubled selectivity on every edge the same order gets more
        // expensive.
        let mut q2 = LargeQuery::new(q.rels.clone());
        for e in &q.edges {
            q2.add_edge(e.u as usize, e.v as usize, (e.sel * 2.0).min(1.0));
        }
        let qi2 = q2.to_query_info().unwrap();
        let r2 = recost_plan(&planned, &qi2, &m);
        assert!(r2.cost() > recosted.cost());
    }

    /// A minimal hand-rolled planner substitute: left-deep join in index
    /// order with cardinalities from the query (keeps this crate's dev-deps
    /// free of the DP crates).
    fn mpdp_dp_plan(q: &QueryInfo, model: &dyn CostModel) -> PlanTree {
        let mut plan = PlanTree::Scan {
            rel: 0,
            rows: q.rels[0].rows,
            cost: q.rels[0].cost,
        };
        for r in 1..q.query_size() {
            let scan = PlanTree::Scan {
                rel: r as u32,
                rows: q.rels[r].rows,
                cost: q.rels[r].cost,
            };
            let set = plan.rel_set().with(r);
            let rows = q.cardinality(set);
            let cost = model.join_cost(
                InputEst {
                    cost: plan.cost(),
                    rows: plan.rows(),
                },
                InputEst {
                    cost: scan.cost(),
                    rows: scan.rows(),
                },
                rows,
            );
            plan = PlanTree::Join {
                left: Box::new(plan),
                right: Box::new(scan),
                rows,
                cost,
            };
        }
        plan
    }

    #[test]
    fn overrides_fold_into_catalog() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![
            RelInfo::new(500.0, 1.0),
            RelInfo::new(500.0, 1.0),
            RelInfo::new(500.0, 1.0),
        ]);
        q.add_edge(0, 1, 1.0 / 1000.0);
        q.add_edge(1, 2, 1.0 / 100.0);
        let mut sc = synthesize_catalog(&q);
        use crate::datagen::{materialize, GenConfig, SkewedEdge};
        use crate::executor::{ExecConfig, Executor};
        let d = materialize(
            &q,
            &GenConfig {
                seed: 11,
                skew: vec![SkewedEdge {
                    u: 0,
                    v: 1,
                    hot_fraction: 0.3,
                }],
                ..Default::default()
            },
            &m,
        );
        // Left-deep (0 ⋈ 1) ⋈ 2 with the *estimated* cardinalities.
        let s = |rel: u32| PlanTree::Scan {
            rel,
            rows: 500.0,
            cost: m.scan_cost(500.0),
        };
        let j01 = PlanTree::Join {
            left: Box::new(s(0)),
            right: Box::new(s(1)),
            rows: 250.0,
            cost: 100.0,
        };
        let plan = PlanTree::Join {
            left: Box::new(j01),
            right: Box::new(s(2)),
            rows: 1250.0,
            cost: 200.0,
        };
        let report = Executor::new(&d.scaled, &d, ExecConfig::default())
            .execute(&plan)
            .unwrap();
        // The skewed edge blew past its estimate.
        assert!(
            report.root_deviation() > 10.0,
            "{}",
            report.root_deviation()
        );
        let corrected = fold_observations(&mut sc, &report);
        assert_eq!(corrected, 2);
        let rebuilt = sc.build_query(&m);
        let sel01 = rebuilt.edges[0].sel;
        // Observed ≈ 0.3² + 0.7²/999 ≈ 0.0905 — two orders of magnitude
        // above the 0.001 estimate.
        assert!(sel01 > 0.05, "corrected selectivity {sel01}");
        assert!((rebuilt.edges[1].sel - 0.01).abs() / 0.01 < 0.5);
    }
}
