//! The morsel-parallel vectorized join executor.
//!
//! [`Executor::execute`] walks a [`PlanTree`] bottom-up and runs every join
//! as a three-stage batch-at-a-time hash join:
//!
//! * **build** (single-pass, sequential): the child with the smaller
//!   *modeled* cardinality (the optimizer's own estimate — a mis-estimate
//!   therefore costs real wall time, which is exactly what the feedback
//!   loop measures) is gathered into flat per-edge key columns, hashed with
//!   one fused kernel, and inserted into a chained open-addressing table
//!   plus a two-probe **bloom filter** over the composite hashes;
//! * **probe** (parallel): the probe side is cut into fixed-size **morsels**
//!   ([`ExecConfig::batch`], default 1024 rows). Each pool worker owns a
//!   contiguous morsel range ([`chunk_range`] over morsel indices) and runs
//!   the fused per-morsel kernel pipeline — gather → hash → bloom
//!   pre-filter → table probe with value-by-value verification → column-wise
//!   output gather — into a **private** output buffer;
//! * **merge** (sequential): worker buffers are concatenated in worker
//!   order, which *is* morsel order because ranges are contiguous, so the
//!   output rows, the merged [`ExecStats`], and every downstream observed
//!   selectivity are bit-identical at any worker count.
//!
//! Intermediate results are **rowid vectors** — one `u32` column per
//! participating base relation — so any upper join gathers the key column
//! it needs straight from the base tables without copying payloads through
//! every operator.
//!
//! A join's predicate set is derived from the query graph: every edge with
//! one endpoint on each side participates. Hash keys combine all crossing
//! edges' values; candidate matches are verified value-by-value, so hash
//! collisions can never fabricate output rows (the cross-strategy oracle
//! test relies on every plan of a query producing the identical result
//! cardinality). A join with no crossing edge degenerates to a guarded
//! cross product (heuristic plans on degenerate graphs can contain them).
//!
//! Per operator the executor records [`ExecStats`] (build/probe/output rows,
//! exact morsel count, wall time) and per join it records the **observed
//! combined selectivity** `output / (left × right)` — folded from the
//! per-worker partial outputs before anything downstream (in particular
//! `PlanService::observe`) sees it.

use crate::datagen::Dataset;
use mpdp_core::bitset::RelSet;
use mpdp_core::counters::ExecCounters;
use mpdp_core::memo::murmur3_fmix64;
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use mpdp_obs::{sites, SpanCtx};
use mpdp_parallel::pool::{chunk_range, with_pool, PoolHandle};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Execution knobs.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Probe-side morsel size in rows.
    pub batch: usize,
    /// Hard cap on any operator's output cardinality; exceeding it aborts
    /// the run with [`ExecError::OutputCap`] instead of filling memory.
    pub max_output_rows: usize,
    /// Probe-phase worker count. [`Executor::execute`] spawns a barrier
    /// pool of this many workers once per run; `1` (the default) runs
    /// inline with zero thread overhead. Results are bit-identical at any
    /// value — see the module docs' merge-order argument.
    pub workers: usize,
    /// Probe sides at or below this many rows skip the barrier pool and
    /// run their morsel loop inline on the driver thread, regardless of
    /// `workers`. A `pool.map` is a full wake-all/park-all round trip;
    /// on tiny joins that costs more than the probe itself (the fig5
    /// shapes regressed 0.78 → 2.26 ms going 1 → 2 workers before this
    /// cutoff existed). The inline path runs the identical kernels over
    /// the identical morsel ranges in morsel order, so results stay
    /// bit-identical across the threshold.
    pub sequential_cutoff: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            batch: 1024,
            max_output_rows: 20_000_000,
            workers: 1,
            sequential_cutoff: 4096,
        }
    }
}

/// Executor errors.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// An operator exceeded [`ExecConfig::max_output_rows`].
    OutputCap {
        /// The relations joined by the offending operator.
        rels: RelSet,
        /// The configured cap.
        cap: usize,
    },
    /// The plan does not fit the query/dataset (wrong relation index, >64
    /// relations, mismatched table count).
    BadPlan(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutputCap { rels, cap } => {
                write!(f, "join over {rels} exceeded the output cap of {cap} rows")
            }
            ExecError::BadPlan(msg) => write!(f, "plan does not fit dataset: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-operator execution statistics.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ExecStats {
    /// Base relations covered by this operator's output.
    pub rels: RelSet,
    /// Rows inserted into the hash table (0 for scans).
    pub build_rows: u64,
    /// Rows streamed through the probe side (0 for scans).
    pub probe_rows: u64,
    /// Output cardinality.
    pub output_rows: u64,
    /// Probe morsels processed — exactly `⌈probe_rows / batch⌉`, summed
    /// from the per-worker ranges (asserted by the oracle tests, including
    /// the probe-rows-an-exact-multiple-of-batch boundary).
    pub batches: u64,
    /// The optimizer's estimated output cardinality for this operator.
    pub est_rows: f64,
    /// Wall time spent in this operator (excluding its children).
    pub wall: Duration,
}

/// One observed join: which sides met, over which edges, and what came out.
#[derive(Clone, Debug)]
pub struct ObservedJoin {
    /// Left (probe) input's relation set.
    pub left: RelSet,
    /// Right (build) input's relation set.
    pub right: RelSet,
    /// Indices into `query.edges` of the predicates this join applied.
    pub edges: Vec<usize>,
    /// Input cardinalities (left, right).
    pub inputs: (u64, u64),
    /// Observed output cardinality.
    pub output: u64,
    /// Observed combined selectivity `output / (left × right)`; 0 when an
    /// input was empty.
    pub observed_sel: f64,
    /// The optimizer's estimated output cardinality.
    pub est_rows: f64,
}

/// The outcome of executing one plan.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Per-operator statistics in bottom-up (post-order) execution order.
    pub stats: Vec<ExecStats>,
    /// Per-join observations (same order as the join operators in `stats`).
    pub joins: Vec<ObservedJoin>,
    /// Result cardinality at the plan root.
    pub root_rows: u64,
    /// Estimated root cardinality (from the plan).
    pub est_root_rows: f64,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Aggregate counters (rows built/probed/emitted, batches).
    pub counters: ExecCounters,
    /// Payload bytes the result set stands for: root rows × the summed
    /// payload widths of all participating tables.
    pub result_bytes: u64,
    /// Per-worker probe-phase busy time, summed over all joins (length is
    /// the worker count the run used). On a host with that many idle cores
    /// the probe phases overlap; on a time-sliced host they serialize and
    /// the measured [`ExecReport::wall`] stays flat, which is why
    /// [`ExecReport::parallel_model_wall`] exists.
    pub worker_busy: Vec<Duration>,
}

impl ExecReport {
    /// Ratio by which the root estimate missed the observation (always
    /// ≥ 1; both directions count). 1.0 for a perfect estimate.
    pub fn root_deviation(&self) -> f64 {
        let est = self.est_root_rows.max(1.0);
        let obs = (self.root_rows as f64).max(1.0);
        (est / obs).max(obs / est)
    }

    /// The work/span-model wall for this run: the measured wall with the
    /// summed probe busy time replaced by the *longest single worker's*
    /// busy time — what the run costs on a host where every pool worker has
    /// its own core. On such a host this converges to the measured wall; on
    /// the repo's single-core container it is the standard `[model]` figure
    /// (DESIGN.md §2) next to the measured one.
    pub fn parallel_model_wall(&self) -> Duration {
        let total: Duration = self.worker_busy.iter().sum();
        let span = self.worker_busy.iter().max().copied().unwrap_or_default();
        self.wall.saturating_sub(total) + span
    }
}

/// A materialized result: rowid vectors per participating base relation.
/// This is both the executor's intermediate representation and (at the
/// root) the returned result set of [`Executor::execute_with_result`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Participating relations, ascending.
    pub rels: Vec<u32>,
    /// `rowids[i]` holds one row index into base table `rels[i]` per output
    /// row (all columns share one length).
    pub rowids: Vec<Vec<u32>>,
    /// Output row count.
    pub len: usize,
}

impl ResultSet {
    fn column_of(&self, rel: u32) -> &[u32] {
        let i = self
            .rels
            .iter()
            .position(|&r| r == rel)
            .expect("relation present in intermediate");
        &self.rowids[i]
    }
}

/// The composite-hash fold shared by build and probe: good mixing is all
/// that is required — equality is re-verified value-by-value on probe.
#[inline]
fn fold(h: u64, key: u64) -> u64 {
    murmur3_fmix64(h ^ key)
}

/// Seed of the composite-hash fold (any odd constant works; this one is
/// shared with the morsel hash kernels so build and probe agree).
const HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Sentinel for an empty hash bucket / end of a chain.
const EMPTY: u32 = u32::MAX;

/// A two-probe bloom filter over composite build hashes, sized at 16 bits
/// per build row (rounded up to a power of two), giving a false-positive
/// rate of `(1 - e^(-2/16))² ≈ 1.4%`. Probing it is two dependent loads on
/// one cache-resident bit array versus a bucket + chain walk on the (much
/// larger) table, so non-matching probe rows — the common case under
/// selective joins — never touch the table.
struct Bloom {
    words: Vec<u64>,
    mask: u64,
}

impl Bloom {
    fn new(rows: usize) -> Self {
        let bits = rows.max(4).next_power_of_two() as u64 * 16;
        Bloom {
            words: vec![0; (bits / 64) as usize],
            mask: bits - 1,
        }
    }

    /// The two derived bit positions: low hash bits and a rotation, so one
    /// 64-bit hash yields two independent-enough probes without rehashing.
    #[inline]
    fn bits_of(&self, h: u64) -> (u64, u64) {
        (h & self.mask, h.rotate_right(21) & self.mask)
    }

    #[inline]
    fn insert(&mut self, h: u64) {
        let (a, b) = self.bits_of(h);
        self.words[(a / 64) as usize] |= 1 << (a % 64);
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    #[inline]
    fn may_contain(&self, h: u64) -> bool {
        let (a, b) = self.bits_of(h);
        self.words[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

/// The build-stage product: flat gathered key columns, composite hashes,
/// and a chained hash table (bucket heads + next links) with a bloom filter
/// in front. Chains are built by inserting rows in reverse, so walking a
/// chain visits build rows in ascending order — one more place where
/// iteration order (and therefore output order) is pinned by construction,
/// not by scheduling.
struct BuildTable {
    /// Gathered build keys, one flat column per crossing edge.
    keys: Vec<Vec<u64>>,
    /// Composite hash per build row.
    hashes: Vec<u64>,
    /// Bucket heads (power-of-two sized).
    buckets: Vec<u32>,
    /// Chain links per build row.
    next: Vec<u32>,
    mask: u64,
    bloom: Bloom,
}

impl BuildTable {
    /// Build stage: gather kernel, hash kernel, then table + bloom insert.
    fn build(access: &[EdgeAccess<'_>], len: usize) -> BuildTable {
        // Gather kernel: one flat pass per edge (rowids → base key column).
        let keys: Vec<Vec<u64>> = access
            .iter()
            .map(|a| {
                a.build_rowids
                    .iter()
                    .map(|&r| a.build_keys[r as usize])
                    .collect()
            })
            .collect();
        // Hash kernel: fold one edge's column at a time over the whole
        // build side (column-major, branch-free inner loop).
        let mut hashes = vec![HASH_SEED; len];
        for col in &keys {
            for (h, &k) in hashes.iter_mut().zip(col) {
                *h = fold(*h, k);
            }
        }
        let cap = (len * 2).next_power_of_two().max(16);
        let mask = cap as u64 - 1;
        let mut buckets = vec![EMPTY; cap];
        let mut next = vec![EMPTY; len];
        let mut bloom = Bloom::new(len);
        for row in (0..len).rev() {
            let h = hashes[row];
            bloom.insert(h);
            let b = (h & mask) as usize;
            next[row] = buckets[b];
            buckets[b] = row as u32;
        }
        BuildTable {
            keys,
            hashes,
            buckets,
            next,
            mask,
            bloom,
        }
    }
}

/// Direct slices for one crossing edge, resolved once per join: the morsel
/// kernels must not re-derive them per row (a skewed key can put thousands
/// of candidates behind one probe row, and this wall time is the
/// experiment's signal).
struct EdgeAccess<'c> {
    probe_rowids: &'c [u32],
    probe_keys: &'c [u64],
    build_rowids: &'c [u32],
    build_keys: &'c [u64],
}

/// Per-worker reusable probe scratch: gathered keys (edge-major), composite
/// hashes, the bloom survivor list, and the morsel's match pairs.
struct ProbeScratch {
    keys: Vec<Vec<u64>>,
    hashes: Vec<u64>,
    survivors: Vec<u32>,
    matches: Vec<(u32, u32)>,
}

impl ProbeScratch {
    fn new(edges: usize, batch: usize) -> Self {
        ProbeScratch {
            keys: (0..edges).map(|_| vec![0; batch]).collect(),
            hashes: vec![0; batch],
            survivors: Vec::with_capacity(batch),
            matches: Vec::new(),
        }
    }
}

/// One worker's private probe output: per-column rowid buffers plus its
/// share of the merged statistics.
struct WorkerOut {
    cols: Vec<Vec<u32>>,
    rows: usize,
    batches: u64,
    busy: Duration,
}

/// The vectorized executor: borrow a query and its dataset, execute plans.
pub struct Executor<'a> {
    query: &'a LargeQuery,
    data: &'a Dataset,
    config: ExecConfig,
    trace: SpanCtx,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a materialized dataset. The plans passed to
    /// [`Executor::execute`] must have been optimized for
    /// [`Dataset::scaled`] (or a query with the same relation indices), so
    /// their modeled cardinalities live at the dataset's scale.
    pub fn new(query: &'a LargeQuery, data: &'a Dataset, config: ExecConfig) -> Self {
        Executor {
            query,
            data,
            config,
            trace: SpanCtx::default(),
        }
    }

    /// Attaches a span context: every join records `exec.build` /
    /// `exec.probe` spans and per-worker `exec.morsels` spans under it.
    /// The default context is disabled (one branch per site); tracing
    /// never feeds back into kernels, so armed runs stay bit-identical.
    pub fn with_trace(mut self, trace: SpanCtx) -> Self {
        self.trace = trace;
        self
    }

    /// Executes a plan and reports per-operator statistics and per-join
    /// observed selectivities. Spawns (and tears down) a barrier pool of
    /// [`ExecConfig::workers`] workers for the probe phases; to amortize
    /// the pool across many plans, use [`Executor::execute_in`].
    pub fn execute(&self, plan: &PlanTree) -> Result<ExecReport, ExecError> {
        with_pool(self.config.workers.max(1), |pool| {
            self.execute_in(pool, plan)
        })
    }

    /// Like [`Executor::execute`] but also returns the root result set
    /// (rowid columns into the base tables) — the byte-exact artifact the
    /// parallel-equivalence tests compare across worker counts.
    pub fn execute_with_result(
        &self,
        plan: &PlanTree,
    ) -> Result<(ExecReport, ResultSet), ExecError> {
        with_pool(self.config.workers.max(1), |pool| {
            self.execute_with_result_in(pool, plan)
        })
    }

    /// Executes a plan on a caller-provided pool (reused across plans or
    /// shared with the DP backends — the same persistent barrier pool
    /// drives both the optimizer's levels and the executor's morsels).
    pub fn execute_in(
        &self,
        pool: &PoolHandle<'_>,
        plan: &PlanTree,
    ) -> Result<ExecReport, ExecError> {
        self.execute_with_result_in(pool, plan).map(|(r, _)| r)
    }

    /// [`Executor::execute_with_result`] on a caller-provided pool.
    pub fn execute_with_result_in(
        &self,
        pool: &PoolHandle<'_>,
        plan: &PlanTree,
    ) -> Result<(ExecReport, ResultSet), ExecError> {
        if self.query.num_rels() > 64 {
            return Err(ExecError::BadPlan(format!(
                "executor covers the exact regime (≤64 relations), got {}",
                self.query.num_rels()
            )));
        }
        if self.data.tables.len() != self.query.num_rels() {
            return Err(ExecError::BadPlan(format!(
                "dataset has {} tables for a {}-relation query",
                self.data.tables.len(),
                self.query.num_rels()
            )));
        }
        let start = Instant::now();
        let mut stats = Vec::new();
        let mut joins = Vec::new();
        let mut busy = vec![Duration::ZERO; pool.workers()];
        let root = self.run(plan, pool, &mut stats, &mut joins, &mut busy)?;
        let wall = start.elapsed();
        // Aggregate from the joins vec (not a rows>0 heuristic on stats):
        // a join of two empty intermediates is still a join operator and
        // must keep `counters.joins` consistent with `joins.len()`.
        let mut counters = ExecCounters {
            joins: joins.len() as u64,
            ..Default::default()
        };
        for j in &joins {
            counters.probe_rows += j.inputs.0;
            counters.build_rows += j.inputs.1;
            counters.output_rows += j.output;
        }
        for s in &stats {
            counters.batches += s.batches;
        }
        let width: u64 = root
            .rels
            .iter()
            .map(|&r| self.data.tables[r as usize].payload_width as u64)
            .sum();
        let report = ExecReport {
            root_rows: root.len as u64,
            est_root_rows: plan.rows(),
            stats,
            joins,
            wall,
            counters,
            result_bytes: root.len as u64 * width,
            worker_busy: busy,
        };
        Ok((report, root))
    }

    fn run(
        &self,
        plan: &PlanTree,
        pool: &PoolHandle<'_>,
        stats: &mut Vec<ExecStats>,
        joins: &mut Vec<ObservedJoin>,
        busy: &mut [Duration],
    ) -> Result<ResultSet, ExecError> {
        match plan {
            PlanTree::Scan { rel, rows, .. } => {
                let r = *rel as usize;
                if r >= self.data.tables.len() {
                    return Err(ExecError::BadPlan(format!("scan of unknown relation {r}")));
                }
                let n = self.data.tables[r].rows;
                stats.push(ExecStats {
                    rels: RelSet::singleton(r),
                    build_rows: 0,
                    probe_rows: 0,
                    output_rows: n as u64,
                    batches: 0,
                    est_rows: *rows,
                    wall: Duration::ZERO,
                });
                Ok(ResultSet {
                    rels: vec![*rel],
                    rowids: vec![(0..n as u32).collect()],
                    len: n,
                })
            }
            PlanTree::Join {
                left, right, rows, ..
            } => {
                let l = self.run(left, pool, stats, joins, busy)?;
                let r = self.run(right, pool, stats, joins, busy)?;
                let t0 = Instant::now();
                // Build on the smaller *modeled* side; ties build right,
                // matching the cost models' build-right convention.
                let (probe, build) = if right.rows() <= left.rows() {
                    (l, r)
                } else {
                    (r, l)
                };
                let out = self.hash_join(pool, &probe, &build, *rows, stats, joins, busy)?;
                if let Some(s) = stats.last_mut() {
                    s.wall = t0.elapsed();
                }
                Ok(out)
            }
        }
    }

    /// The crossing edges between two relation sets, as indices into
    /// `query.edges`.
    fn crossing_edges(&self, a: RelSet, b: RelSet) -> Vec<usize> {
        self.query
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let (u, v) = (e.u as usize, e.v as usize);
                (a.contains(u) && b.contains(v)) || (a.contains(v) && b.contains(u))
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        pool: &PoolHandle<'_>,
        probe: &ResultSet,
        build: &ResultSet,
        est_rows: f64,
        stats: &mut Vec<ExecStats>,
        joins: &mut Vec<ObservedJoin>,
        busy: &mut [Duration],
    ) -> Result<ResultSet, ExecError> {
        let probe_set = RelSet::from_indices(probe.rels.iter().map(|&r| r as usize));
        let build_set = RelSet::from_indices(build.rels.iter().map(|&r| r as usize));
        let edges = self.crossing_edges(probe_set, build_set);

        // Resolve each crossing edge to direct (rowid column, key column)
        // slices once.
        fn resolve<'c>(
            query: &LargeQuery,
            data: &'c Dataset,
            side: &'c ResultSet,
            set: RelSet,
            ei: usize,
        ) -> (&'c [u32], &'c [u64]) {
            let e = &query.edges[ei];
            let rel = if set.contains(e.u as usize) { e.u } else { e.v };
            let keys = data.tables[rel as usize].keys[ei]
                .as_ref()
                .expect("endpoint tables carry the edge's key column");
            (side.column_of(rel), keys)
        }
        let access: Vec<EdgeAccess<'_>> = edges
            .iter()
            .map(|&ei| {
                let (probe_rowids, probe_keys) =
                    resolve(self.query, self.data, probe, probe_set, ei);
                let (build_rowids, build_keys) =
                    resolve(self.query, self.data, build, build_set, ei);
                EdgeAccess {
                    probe_rowids,
                    probe_keys,
                    build_rowids,
                    build_keys,
                }
            })
            .collect();

        // ---- Build stage (single-pass, sequential). ----
        let table = {
            let mut span = self.trace.span(sites::EXEC_BUILD);
            span.set_attr(build.len as u64);
            BuildTable::build(&access, build.len)
        };

        // ---- Probe stage (parallel over morsel ranges). ----
        let out_rels: Vec<u32> = {
            let mut v: Vec<u32> = probe
                .rels
                .iter()
                .chain(build.rels.iter())
                .copied()
                .collect();
            v.sort_unstable();
            v
        };
        // Output gather sources, resolved once: each output column comes
        // from exactly one side's rowid column.
        let out_sources: Vec<(bool, &[u32])> = out_rels
            .iter()
            .map(|&rel| {
                if probe_set.contains(rel as usize) {
                    (true, probe.column_of(rel))
                } else {
                    (false, build.column_of(rel))
                }
            })
            .collect();

        let batch = self.config.batch.max(1);
        let cap = self.config.max_output_rows;
        let morsels = probe.len.div_ceil(batch);
        let workers = pool.workers();
        let emitted = AtomicU64::new(0);
        let aborted = AtomicBool::new(false);
        // Probe-stage span; per-worker morsel spans nest under it.
        let mut probe_stage = self.trace.span(sites::EXEC_PROBE);
        probe_stage.set_attr(probe.len as u64);
        let probe_ctx = probe_stage.ctx();
        // One worker's span of the probe: morsels `chunk_range(morsels,
        // parts, w)`, in morsel order. Shared by the pooled path (one call
        // per pool worker) and the small-probe fast path (one call
        // covering everything), so both produce the same per-morsel
        // outputs in the same order and the merge below is bit-identical.
        let probe_span = |w: usize, parts: usize| {
            // Per-worker morsel span, recorded into the *worker thread's*
            // own ring; attr is the batch count this worker processed.
            let mut morsel_span = probe_ctx.span(sites::EXEC_MORSELS);
            let t0 = Instant::now();
            let mut out = WorkerOut {
                cols: vec![Vec::new(); out_rels.len()],
                rows: 0,
                batches: 0,
                busy: Duration::ZERO,
            };
            let mut scratch = ProbeScratch::new(access.len(), batch);
            for m in chunk_range(morsels, parts, w) {
                if aborted.load(Ordering::Relaxed) {
                    break;
                }
                let lo = m * batch;
                let hi = (lo + batch).min(probe.len);
                self.probe_morsel(&access, &table, lo, hi, &mut scratch);
                out.batches += 1;
                let found = scratch.matches.len() as u64;
                // Global output-cap accounting. In a run whose total output
                // fits the cap no partial sum can exceed it, so the abort
                // branch below never fires and results stay deterministic;
                // in a blow-up every interleaving eventually trips it.
                if emitted.fetch_add(found, Ordering::Relaxed) + found > cap as u64 {
                    aborted.store(true, Ordering::Relaxed);
                    break;
                }
                // Gather the morsel's match pairs column-wise into this
                // worker's private output buffers.
                out.rows += scratch.matches.len();
                for (col, &(from_probe, src)) in out.cols.iter_mut().zip(&out_sources) {
                    col.reserve(scratch.matches.len());
                    if from_probe {
                        col.extend(scratch.matches.iter().map(|&(p, _)| src[p as usize]));
                    } else {
                        col.extend(scratch.matches.iter().map(|&(_, b)| src[b as usize]));
                    }
                }
            }
            out.busy = t0.elapsed();
            morsel_span.set_attr(out.batches);
            out
        };
        // Small-query sequential fast path: below the cutoff the barrier
        // round trip costs more than the probe — run the whole span inline
        // (busy lands on slot 0; `worker_busy` keeps one slot per pool
        // worker either way).
        let outs: Vec<WorkerOut> = if workers == 1 || probe.len <= self.config.sequential_cutoff {
            vec![probe_span(0, 1)]
        } else {
            pool.map(|w| probe_span(w, workers))
        };
        drop(probe_stage);
        if aborted.load(Ordering::Relaxed) {
            return Err(ExecError::OutputCap {
                rels: probe_set.union(build_set),
                cap,
            });
        }

        // ---- Merge stage: concatenate in worker order == morsel order. ----
        let out_len: usize = outs.iter().map(|o| o.rows).sum();
        let batches: u64 = outs.iter().map(|o| o.batches).sum();
        let mut out_rowids: Vec<Vec<u32>> = Vec::with_capacity(out_rels.len());
        for ci in 0..out_rels.len() {
            let mut col = Vec::with_capacity(out_len);
            for o in &outs {
                col.extend_from_slice(&o.cols[ci]);
            }
            out_rowids.push(col);
        }
        for (slot, o) in busy.iter_mut().zip(&outs) {
            *slot += o.busy;
        }

        // Per-worker partial outputs are folded (summed) *before* the
        // observed selectivity is computed, so the feedback path always
        // sees the merged observation.
        let observed_sel = if probe.len == 0 || build.len == 0 {
            0.0
        } else {
            out_len as f64 / (probe.len as f64 * build.len as f64)
        };
        stats.push(ExecStats {
            rels: probe_set.union(build_set),
            build_rows: build.len as u64,
            probe_rows: probe.len as u64,
            output_rows: out_len as u64,
            batches,
            est_rows,
            wall: Duration::ZERO, // filled by the caller around the join
        });
        joins.push(ObservedJoin {
            left: probe_set,
            right: build_set,
            edges,
            inputs: (probe.len as u64, build.len as u64),
            output: out_len as u64,
            observed_sel,
            est_rows,
        });
        Ok(ResultSet {
            rels: out_rels,
            rowids: out_rowids,
            len: out_len,
        })
    }

    /// The fused per-morsel kernel pipeline over probe rows `lo..hi`:
    /// gather → hash → bloom pre-filter → chained-table probe with
    /// value-by-value verification. Match pairs land in `scratch.matches`
    /// as `(global probe row, build row)`, in (probe row, chain) order.
    fn probe_morsel(
        &self,
        access: &[EdgeAccess<'_>],
        table: &BuildTable,
        lo: usize,
        hi: usize,
        scratch: &mut ProbeScratch,
    ) {
        let len = hi - lo;
        // Gather kernel: edge-major flat loops (rowid → base key column).
        for (col, a) in scratch.keys.iter_mut().zip(access) {
            for (k, &rid) in col[..len].iter_mut().zip(&a.probe_rowids[lo..hi]) {
                *k = a.probe_keys[rid as usize];
            }
        }
        // Hash kernel: fold one edge column at a time.
        scratch.hashes[..len].fill(HASH_SEED);
        for col in &scratch.keys {
            for (h, &k) in scratch.hashes[..len].iter_mut().zip(&col[..len]) {
                *h = fold(*h, k);
            }
        }
        // Bloom kernel: batch pre-filter into a survivor selection vector —
        // rows that cannot match never touch the hash table.
        scratch.survivors.clear();
        scratch.survivors.extend(
            scratch.hashes[..len]
                .iter()
                .enumerate()
                .filter(|(_, &h)| table.bloom.may_contain(h))
                .map(|(i, _)| i as u32),
        );
        // Probe kernel: walk the chain for each survivor; reject on the
        // stored composite hash first, then verify every crossing edge
        // value-for-value (the fold may collide, equality may not).
        scratch.matches.clear();
        for &i in &scratch.survivors {
            let i = i as usize;
            let h = scratch.hashes[i];
            let mut b = table.buckets[(h & table.mask) as usize];
            while b != EMPTY {
                let row = b as usize;
                if table.hashes[row] == h {
                    let all_match = scratch
                        .keys
                        .iter()
                        .zip(&table.keys)
                        .all(|(pk, bk)| pk[i] == bk[row]);
                    if all_match {
                        scratch.matches.push(((lo + i) as u32, b));
                    }
                }
                b = table.next[row];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{materialize, GenConfig};
    use mpdp_core::query::RelInfo;
    use mpdp_cost::PgLikeCost;

    /// Two 4-row tables joining on a domain of 2: keys are deterministic, so
    /// the expected matches can be counted by hand from the generated data.
    #[test]
    fn two_way_join_matches_nested_loop_count() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(40.0, 1.0), RelInfo::new(30.0, 1.0)]);
        q.add_edge(0, 1, 0.5); // domain 2
        let d = materialize(&q, &GenConfig::default(), &m);
        let a = d.tables[0].keys[0].as_ref().unwrap();
        let b = d.tables[1].keys[0].as_ref().unwrap();
        let expected: usize = a
            .iter()
            .map(|ka| b.iter().filter(|&&kb| kb == *ka).count())
            .sum();
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 40.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 30.0,
                cost: 1.0,
            }),
            rows: 40.0 * 30.0 * 0.5,
            cost: 10.0,
        };
        let ex = Executor::new(&d.scaled, &d, ExecConfig::default());
        let r = ex.execute(&plan).unwrap();
        assert_eq!(r.root_rows as usize, expected);
        assert_eq!(r.joins.len(), 1);
        assert_eq!(r.joins[0].output as usize, expected);
        assert_eq!(r.counters.joins, 1);
    }

    /// Morsel boundaries must not change results: a probe side that is not a
    /// multiple of the batch size still emits every match, and the morsel
    /// counter is exact — including when probe rows divide evenly (2500/1
    /// and a by-hand 2500-row check would hide an off-by-one there).
    #[test]
    fn batch_size_is_result_invariant() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(2_500.0, 1.0), RelInfo::new(1_333.0, 1.0)]);
        q.add_edge(0, 1, 1.0 / 37.0);
        let d = materialize(&q, &GenConfig::default(), &m);
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 2_500.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 1_333.0,
                cost: 1.0,
            }),
            rows: 2_500.0 * 1_333.0 / 37.0,
            cost: 10.0,
        };
        let mut outs = Vec::new();
        // 500 and 1250 divide 2500 exactly: the final morsel is full, the
        // boundary where a `<=`-shaped loop condition would double-count.
        for batch in [1usize, 7, 500, 1024, 1250, 1_000_000] {
            let ex = Executor::new(
                &d.scaled,
                &d,
                ExecConfig {
                    batch,
                    ..Default::default()
                },
            );
            let r = ex.execute(&plan).unwrap();
            outs.push(r.root_rows);
            let expected_batches = 2_500_u64.div_ceil(batch as u64);
            assert_eq!(r.stats.last().unwrap().batches, expected_batches);
        }
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    /// Worker count must not change anything observable: output columns,
    /// per-operator stats, and observed selectivities are bit-identical
    /// from 1 to 8 workers (including workers > morsels).
    #[test]
    fn worker_count_is_result_invariant() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(5_000.0, 1.0), RelInfo::new(3_000.0, 1.0)]);
        q.add_edge(0, 1, 1.0 / 97.0);
        let d = materialize(
            &q,
            &GenConfig {
                seed: 11,
                ..Default::default()
            },
            &m,
        );
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 5_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 3_000.0,
                cost: 1.0,
            }),
            rows: 5_000.0 * 3_000.0 / 97.0,
            cost: 10.0,
        };
        let run = |workers: usize| {
            let ex = Executor::new(
                &d.scaled,
                &d,
                ExecConfig {
                    workers,
                    batch: 256,
                    ..Default::default()
                },
            );
            ex.execute_with_result(&plan).unwrap()
        };
        let (base_report, base_rows) = run(1);
        for workers in [2usize, 3, 8, 64] {
            let (report, rows) = run(workers);
            assert_eq!(rows, base_rows, "output diverged at {workers} workers");
            assert_eq!(report.root_rows, base_report.root_rows);
            let strip = |s: &[ExecStats]| {
                s.iter()
                    .map(|s| (s.rels, s.build_rows, s.probe_rows, s.output_rows, s.batches))
                    .collect::<Vec<_>>()
            };
            assert_eq!(strip(&report.stats), strip(&base_report.stats));
            assert_eq!(report.worker_busy.len(), workers);
            assert_eq!(
                report.joins[0].observed_sel.to_bits(),
                base_report.joins[0].observed_sel.to_bits()
            );
        }
    }

    /// The small-probe sequential fast path must be invisible in results:
    /// runs on either side of (and exactly at) the cutoff boundary agree
    /// bit-for-bit with the pooled path at every worker count. Cutoff 0
    /// forces the pooled path, `usize::MAX` forces the inline path, and
    /// the probe-size cutoffs exercise the `<=` boundary itself.
    #[test]
    fn sequential_cutoff_is_result_invariant() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(5_000.0, 1.0), RelInfo::new(3_000.0, 1.0)]);
        q.add_edge(0, 1, 1.0 / 97.0);
        let d = materialize(
            &q,
            &GenConfig {
                seed: 11,
                ..Default::default()
            },
            &m,
        );
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 5_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 3_000.0,
                cost: 1.0,
            }),
            rows: 5_000.0 * 3_000.0 / 97.0,
            cost: 10.0,
        };
        let run = |workers: usize, cutoff: usize| {
            let ex = Executor::new(
                &d.scaled,
                &d,
                ExecConfig {
                    workers,
                    batch: 256,
                    sequential_cutoff: cutoff,
                    ..Default::default()
                },
            );
            ex.execute_with_result(&plan).unwrap()
        };
        let (base_report, base_rows) = run(1, 0);
        let strip = |s: &[ExecStats]| {
            s.iter()
                .map(|s| (s.rels, s.build_rows, s.probe_rows, s.output_rows, s.batches))
                .collect::<Vec<_>>()
        };
        for workers in [2usize, 4] {
            // Either relation may be the probe side; cutoffs bracket both
            // lengths so the `<=` boundary is crossed whichever it is.
            for cutoff in [0usize, 2_999, 3_000, 4_999, 5_000, usize::MAX] {
                let (report, rows) = run(workers, cutoff);
                assert_eq!(
                    rows, base_rows,
                    "output diverged at {workers} workers, cutoff {cutoff}"
                );
                assert_eq!(report.root_rows, base_report.root_rows);
                assert_eq!(strip(&report.stats), strip(&base_report.stats));
                assert_eq!(report.worker_busy.len(), workers);
                assert_eq!(
                    report.joins[0].observed_sel.to_bits(),
                    base_report.joins[0].observed_sel.to_bits()
                );
            }
        }
    }

    /// Armed tracing must be invisible in results: with a live tracer
    /// attached, the result set, per-operator stats, and observed
    /// selectivity are bit-identical to the untraced baseline at 1, 4 and
    /// 8 workers — and the drained trace carries the build/probe/morsel
    /// spans the join executed.
    #[test]
    fn armed_tracing_is_result_invariant() {
        use mpdp_obs::{sites, Tracer};
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(5_000.0, 1.0), RelInfo::new(3_000.0, 1.0)]);
        q.add_edge(0, 1, 1.0 / 97.0);
        let d = materialize(
            &q,
            &GenConfig {
                seed: 11,
                ..Default::default()
            },
            &m,
        );
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 5_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 3_000.0,
                cost: 1.0,
            }),
            rows: 5_000.0 * 3_000.0 / 97.0,
            cost: 10.0,
        };
        let config = |workers: usize| ExecConfig {
            workers,
            batch: 256,
            // Force the pooled path so worker threads record morsel spans.
            sequential_cutoff: 0,
            ..Default::default()
        };
        let (base_report, base_rows) = Executor::new(&d.scaled, &d, config(1))
            .execute_with_result(&plan)
            .unwrap();
        let strip = |s: &[ExecStats]| {
            s.iter()
                .map(|s| (s.rels, s.build_rows, s.probe_rows, s.output_rows, s.batches))
                .collect::<Vec<_>>()
        };
        for workers in [1usize, 4, 8] {
            let tracer = Tracer::armed(4_096);
            let root = tracer.begin_request(sites::REQUEST);
            let (report, rows) = Executor::new(&d.scaled, &d, config(workers))
                .with_trace(root.ctx())
                .execute_with_result(&plan)
                .unwrap();
            drop(root);
            assert_eq!(
                rows, base_rows,
                "traced output diverged at {workers} workers"
            );
            assert_eq!(strip(&report.stats), strip(&base_report.stats));
            assert_eq!(
                report.joins[0].observed_sel.to_bits(),
                base_report.joins[0].observed_sel.to_bits()
            );
            let spans = tracer.drain();
            let count_of = |s: mpdp_obs::Site| spans.iter().filter(|r| r.site == s).count();
            assert_eq!(count_of(sites::EXEC_BUILD), 1);
            assert_eq!(count_of(sites::EXEC_PROBE), 1);
            assert_eq!(count_of(sites::EXEC_MORSELS), workers);
            // Every morsel span nests under the probe span.
            let probe = spans.iter().find(|r| r.site == sites::EXEC_PROBE).unwrap();
            for rec in spans.iter().filter(|r| r.site == sites::EXEC_MORSELS) {
                assert_eq!(rec.parent, probe.span);
            }
        }
    }

    /// Uniform keys: observed selectivity matches the catalog estimate to
    /// within sampling error.
    #[test]
    fn observed_selectivity_tracks_estimate_on_uniform_keys() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(8_000.0, 1.0), RelInfo::new(8_000.0, 1.0)]);
        let sel = 1.0 / 200.0;
        q.add_edge(0, 1, sel);
        let d = materialize(
            &q,
            &GenConfig {
                seed: 3,
                ..Default::default()
            },
            &m,
        );
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 8_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 8_000.0,
                cost: 1.0,
            }),
            rows: 8_000.0 * 8_000.0 * sel,
            cost: 10.0,
        };
        let ex = Executor::new(&d.scaled, &d, ExecConfig::default());
        let r = ex.execute(&plan).unwrap();
        let obs = r.joins[0].observed_sel;
        assert!(
            (obs - sel).abs() / sel < 0.15,
            "observed {obs} vs estimated {sel}"
        );
        assert!(r.root_deviation() < 1.2, "{}", r.root_deviation());
    }

    #[test]
    fn output_cap_aborts_blowups() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(5_000.0, 1.0), RelInfo::new(5_000.0, 1.0)]);
        q.add_edge(0, 1, 1.0); // every pair matches (domain 1)
        let d = materialize(&q, &GenConfig::default(), &m);
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 5_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 5_000.0,
                cost: 1.0,
            }),
            rows: 25_000_000.0,
            cost: 10.0,
        };
        for workers in [1usize, 4] {
            let ex = Executor::new(
                &d.scaled,
                &d,
                ExecConfig {
                    max_output_rows: 10_000,
                    workers,
                    ..Default::default()
                },
            );
            match ex.execute(&plan) {
                Err(ExecError::OutputCap { cap, .. }) => assert_eq!(cap, 10_000),
                other => panic!("expected OutputCap at {workers} workers, got {other:?}"),
            }
        }
    }

    /// The bloom filter never rejects a present hash and rejects the bulk
    /// of absent ones at its 16-bits/row sizing.
    #[test]
    fn bloom_has_no_false_negatives_and_few_false_positives() {
        let present: Vec<u64> = (0..4_096u64).map(|i| murmur3_fmix64(i * 3 + 1)).collect();
        let mut bloom = Bloom::new(present.len());
        for &h in &present {
            bloom.insert(h);
        }
        for &h in &present {
            assert!(bloom.may_contain(h));
        }
        let absent = (0..100_000u64)
            .map(|i| murmur3_fmix64(0xdead_beef ^ (i * 7 + 3)))
            .filter(|h| bloom.may_contain(*h))
            .count();
        // Expected ≈ 1.4% at 16 bits/row with 2 probes; 4% is far outside.
        assert!(
            absent < 4_000,
            "false-positive rate too high: {absent}/100000"
        );
    }
}
