//! The vectorized in-memory join executor.
//!
//! [`Executor::execute`] walks a [`PlanTree`] bottom-up and runs every join
//! as a batch-at-a-time hash join:
//!
//! * the **build side** is the child with the smaller *modeled* cardinality
//!   (the optimizer's own estimate — a mis-estimate therefore costs real
//!   wall time, which is exactly what the feedback loop measures);
//! * the probe side streams through in fixed-size **morsels**
//!   ([`ExecConfig::batch`], default 1024 rows), each gathered column-wise;
//! * intermediate results are **rowid vectors** — one `u32` column per
//!   participating base relation — so any upper join can gather the key
//!   column it needs straight from the base tables without copying payloads
//!   through every operator.
//!
//! A join's predicate set is derived from the query graph: every edge with
//! one endpoint on each side participates. Hash keys combine all crossing
//! edges' values; candidate matches are verified value-by-value, so hash
//! collisions can never fabricate output rows (the cross-strategy oracle
//! test relies on every plan of a query producing the identical result
//! cardinality). A join with no crossing edge degenerates to a guarded
//! cross product (heuristic plans on degenerate graphs can contain them).
//!
//! Per operator the executor records [`ExecStats`] (build/probe/output rows,
//! batch count, wall time) and per join it records the **observed combined
//! selectivity** `output / (left × right)` — the raw material the feedback
//! path folds back into the catalog.

use crate::datagen::Dataset;
use mpdp_core::bitset::RelSet;
use mpdp_core::counters::ExecCounters;
use mpdp_core::plan::PlanTree;
use mpdp_core::query::LargeQuery;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Execution knobs.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Probe-side morsel size in rows.
    pub batch: usize,
    /// Hard cap on any operator's output cardinality; exceeding it aborts
    /// the run with [`ExecError::OutputCap`] instead of filling memory.
    pub max_output_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            batch: 1024,
            max_output_rows: 20_000_000,
        }
    }
}

/// Executor errors.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// An operator exceeded [`ExecConfig::max_output_rows`].
    OutputCap {
        /// The relations joined by the offending operator.
        rels: RelSet,
        /// The configured cap.
        cap: usize,
    },
    /// The plan does not fit the query/dataset (wrong relation index, >64
    /// relations, mismatched table count).
    BadPlan(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutputCap { rels, cap } => {
                write!(f, "join over {rels} exceeded the output cap of {cap} rows")
            }
            ExecError::BadPlan(msg) => write!(f, "plan does not fit dataset: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-operator execution statistics.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ExecStats {
    /// Base relations covered by this operator's output.
    pub rels: RelSet,
    /// Rows inserted into the hash table (0 for scans).
    pub build_rows: u64,
    /// Rows streamed through the probe side (0 for scans).
    pub probe_rows: u64,
    /// Output cardinality.
    pub output_rows: u64,
    /// Probe morsels processed.
    pub batches: u64,
    /// The optimizer's estimated output cardinality for this operator.
    pub est_rows: f64,
    /// Wall time spent in this operator (excluding its children).
    pub wall: Duration,
}

/// One observed join: which sides met, over which edges, and what came out.
#[derive(Clone, Debug)]
pub struct ObservedJoin {
    /// Left (probe) input's relation set.
    pub left: RelSet,
    /// Right (build) input's relation set.
    pub right: RelSet,
    /// Indices into `query.edges` of the predicates this join applied.
    pub edges: Vec<usize>,
    /// Input cardinalities (left, right).
    pub inputs: (u64, u64),
    /// Observed output cardinality.
    pub output: u64,
    /// Observed combined selectivity `output / (left × right)`; 0 when an
    /// input was empty.
    pub observed_sel: f64,
    /// The optimizer's estimated output cardinality.
    pub est_rows: f64,
}

/// The outcome of executing one plan.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Per-operator statistics in bottom-up (post-order) execution order.
    pub stats: Vec<ExecStats>,
    /// Per-join observations (same order as the join operators in `stats`).
    pub joins: Vec<ObservedJoin>,
    /// Result cardinality at the plan root.
    pub root_rows: u64,
    /// Estimated root cardinality (from the plan).
    pub est_root_rows: f64,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Aggregate counters (rows built/probed/emitted, batches).
    pub counters: ExecCounters,
    /// Payload bytes the result set stands for: root rows × the summed
    /// payload widths of all participating tables.
    pub result_bytes: u64,
}

impl ExecReport {
    /// Ratio by which the root estimate missed the observation (always
    /// ≥ 1; both directions count). 1.0 for a perfect estimate.
    pub fn root_deviation(&self) -> f64 {
        let est = self.est_root_rows.max(1.0);
        let obs = (self.root_rows as f64).max(1.0);
        (est / obs).max(obs / est)
    }
}

/// Intermediate result: rowid vectors per participating base relation.
struct Intermediate {
    /// Participating relations, ascending.
    rels: Vec<u32>,
    /// `rowids[i]` holds one row index into base table `rels[i]` per output
    /// row (all columns share one length).
    rowids: Vec<Vec<u32>>,
    len: usize,
}

impl Intermediate {
    fn column_of(&self, rel: u32) -> &[u32] {
        let i = self
            .rels
            .iter()
            .position(|&r| r == rel)
            .expect("relation present in intermediate");
        &self.rowids[i]
    }
}

/// The vectorized executor: borrow a query and its dataset, execute plans.
pub struct Executor<'a> {
    query: &'a LargeQuery,
    data: &'a Dataset,
    config: ExecConfig,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a materialized dataset. The plans passed to
    /// [`Executor::execute`] must have been optimized for
    /// [`Dataset::scaled`] (or a query with the same relation indices), so
    /// their modeled cardinalities live at the dataset's scale.
    pub fn new(query: &'a LargeQuery, data: &'a Dataset, config: ExecConfig) -> Self {
        Executor {
            query,
            data,
            config,
        }
    }

    /// Executes a plan and reports per-operator statistics and per-join
    /// observed selectivities.
    pub fn execute(&self, plan: &PlanTree) -> Result<ExecReport, ExecError> {
        if self.query.num_rels() > 64 {
            return Err(ExecError::BadPlan(format!(
                "executor covers the exact regime (≤64 relations), got {}",
                self.query.num_rels()
            )));
        }
        if self.data.tables.len() != self.query.num_rels() {
            return Err(ExecError::BadPlan(format!(
                "dataset has {} tables for a {}-relation query",
                self.data.tables.len(),
                self.query.num_rels()
            )));
        }
        let start = Instant::now();
        let mut stats = Vec::new();
        let mut joins = Vec::new();
        let root = self.run(plan, &mut stats, &mut joins)?;
        let wall = start.elapsed();
        // Aggregate from the joins vec (not a rows>0 heuristic on stats):
        // a join of two empty intermediates is still a join operator and
        // must keep `counters.joins` consistent with `joins.len()`.
        let mut counters = ExecCounters {
            joins: joins.len() as u64,
            ..Default::default()
        };
        for j in &joins {
            counters.probe_rows += j.inputs.0;
            counters.build_rows += j.inputs.1;
            counters.output_rows += j.output;
        }
        for s in &stats {
            counters.batches += s.batches;
        }
        let width: u64 = root
            .rels
            .iter()
            .map(|&r| self.data.tables[r as usize].payload_width as u64)
            .sum();
        Ok(ExecReport {
            root_rows: root.len as u64,
            est_root_rows: plan.rows(),
            stats,
            joins,
            wall,
            counters,
            result_bytes: root.len as u64 * width,
        })
    }

    fn run(
        &self,
        plan: &PlanTree,
        stats: &mut Vec<ExecStats>,
        joins: &mut Vec<ObservedJoin>,
    ) -> Result<Intermediate, ExecError> {
        match plan {
            PlanTree::Scan { rel, rows, .. } => {
                let r = *rel as usize;
                if r >= self.data.tables.len() {
                    return Err(ExecError::BadPlan(format!("scan of unknown relation {r}")));
                }
                let n = self.data.tables[r].rows;
                stats.push(ExecStats {
                    rels: RelSet::singleton(r),
                    build_rows: 0,
                    probe_rows: 0,
                    output_rows: n as u64,
                    batches: 0,
                    est_rows: *rows,
                    wall: Duration::ZERO,
                });
                Ok(Intermediate {
                    rels: vec![*rel],
                    rowids: vec![(0..n as u32).collect()],
                    len: n,
                })
            }
            PlanTree::Join {
                left, right, rows, ..
            } => {
                let l = self.run(left, stats, joins)?;
                let r = self.run(right, stats, joins)?;
                let t0 = Instant::now();
                // Build on the smaller *modeled* side; ties build right,
                // matching the cost models' build-right convention.
                let (probe, build) = if right.rows() <= left.rows() {
                    (l, r)
                } else {
                    (r, l)
                };
                let out = self.hash_join(&probe, &build, *rows, stats, joins)?;
                if let Some(s) = stats.last_mut() {
                    s.wall = t0.elapsed();
                }
                Ok(out)
            }
        }
    }

    /// The crossing edges between two relation sets, as indices into
    /// `query.edges`.
    fn crossing_edges(&self, a: RelSet, b: RelSet) -> Vec<usize> {
        self.query
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let (u, v) = (e.u as usize, e.v as usize);
                (a.contains(u) && b.contains(v)) || (a.contains(v) && b.contains(u))
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn hash_join(
        &self,
        probe: &Intermediate,
        build: &Intermediate,
        est_rows: f64,
        stats: &mut Vec<ExecStats>,
        joins: &mut Vec<ObservedJoin>,
    ) -> Result<Intermediate, ExecError> {
        let probe_set = RelSet::from_indices(probe.rels.iter().map(|&r| r as usize));
        let build_set = RelSet::from_indices(build.rels.iter().map(|&r| r as usize));
        let edges = self.crossing_edges(probe_set, build_set);

        // Resolve each crossing edge to direct (rowid column, key column)
        // slices once — the probe inner loop must not re-derive them per
        // candidate (a skewed key can put thousands of candidates behind
        // one probe row, and this wall time is the experiment's signal).
        struct EdgeAccess<'c> {
            probe_rowids: &'c [u32],
            probe_keys: &'c [u64],
            build_rowids: &'c [u32],
            build_keys: &'c [u64],
        }
        fn resolve<'c>(
            query: &LargeQuery,
            data: &'c Dataset,
            side: &'c Intermediate,
            set: RelSet,
            ei: usize,
        ) -> (&'c [u32], &'c [u64]) {
            let e = &query.edges[ei];
            let rel = if set.contains(e.u as usize) { e.u } else { e.v };
            let keys = data.tables[rel as usize].keys[ei]
                .as_ref()
                .expect("endpoint tables carry the edge's key column");
            (side.column_of(rel), keys)
        }
        let access: Vec<EdgeAccess<'_>> = edges
            .iter()
            .map(|&ei| {
                let (probe_rowids, probe_keys) =
                    resolve(self.query, self.data, probe, probe_set, ei);
                let (build_rowids, build_keys) =
                    resolve(self.query, self.data, build, build_set, ei);
                EdgeAccess {
                    probe_rowids,
                    probe_keys,
                    build_rowids,
                    build_keys,
                }
            })
            .collect();
        let build_key = |a: &EdgeAccess<'_>, row: usize| a.build_keys[a.build_rowids[row] as usize];

        // Build phase: composite key hash -> build-row indices. Keys of all
        // crossing edges are folded into one u64; equality is re-verified on
        // probe, so the fold only needs to be a good hash.
        let fold = |h: u64, key: u64| mpdp_core::memo::murmur3_fmix64(h ^ key);
        let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(build.len.max(1));
        for row in 0..build.len {
            let h = access
                .iter()
                .fold(0x9e37_79b9_7f4a_7c15_u64, |h, a| fold(h, build_key(a, row)));
            table.entry(h).or_default().push(row as u32);
        }

        // Probe phase, one morsel at a time.
        let out_rels: Vec<u32> = {
            let mut v: Vec<u32> = probe
                .rels
                .iter()
                .chain(build.rels.iter())
                .copied()
                .collect();
            v.sort_unstable();
            v
        };
        let mut out_rowids: Vec<Vec<u32>> = vec![Vec::new(); out_rels.len()];
        let mut out_len = 0usize;
        let mut batches = 0u64;
        let batch = self.config.batch.max(1);
        let mut morsel: Vec<(u32, u32)> = Vec::with_capacity(batch); // (probe row, build row)
        let mut probe_keys: Vec<u64> = vec![0; access.len()];
        let mut probe_row = 0usize;
        while probe_row < probe.len {
            let end = (probe_row + batch).min(probe.len);
            batches += 1;
            morsel.clear();
            for row in probe_row..end {
                // This probe row's key per crossing edge, gathered once —
                // invariant across however many candidates hash here.
                let mut h = 0x9e37_79b9_7f4a_7c15_u64;
                for (k, a) in probe_keys.iter_mut().zip(&access) {
                    *k = a.probe_keys[a.probe_rowids[row] as usize];
                    h = fold(h, *k);
                }
                if let Some(cands) = table.get(&h) {
                    for &b in cands {
                        // Verify every crossing edge value-for-value: the
                        // fold above may collide, equality may not.
                        let all_match = probe_keys
                            .iter()
                            .zip(&access)
                            .all(|(&k, a)| k == build_key(a, b as usize));
                        if all_match {
                            morsel.push((row as u32, b));
                        }
                    }
                }
            }
            out_len += morsel.len();
            if out_len > self.config.max_output_rows {
                return Err(ExecError::OutputCap {
                    rels: probe_set.union(build_set),
                    cap: self.config.max_output_rows,
                });
            }
            // Gather the morsel's rowids column-wise into the output.
            for (oi, &rel) in out_rels.iter().enumerate() {
                let col = &mut out_rowids[oi];
                col.reserve(morsel.len());
                if probe_set.contains(rel as usize) {
                    let src = probe.column_of(rel);
                    col.extend(morsel.iter().map(|&(p, _)| src[p as usize]));
                } else {
                    let src = build.column_of(rel);
                    col.extend(morsel.iter().map(|&(_, b)| src[b as usize]));
                }
            }
            probe_row = end;
        }

        let observed_sel = if probe.len == 0 || build.len == 0 {
            0.0
        } else {
            out_len as f64 / (probe.len as f64 * build.len as f64)
        };
        stats.push(ExecStats {
            rels: probe_set.union(build_set),
            build_rows: build.len as u64,
            probe_rows: probe.len as u64,
            output_rows: out_len as u64,
            batches,
            est_rows,
            wall: Duration::ZERO, // filled by the caller around the join
        });
        joins.push(ObservedJoin {
            left: probe_set,
            right: build_set,
            edges,
            inputs: (probe.len as u64, build.len as u64),
            output: out_len as u64,
            observed_sel,
            est_rows,
        });
        Ok(Intermediate {
            rels: out_rels,
            rowids: out_rowids,
            len: out_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{materialize, GenConfig};
    use mpdp_core::query::RelInfo;
    use mpdp_cost::PgLikeCost;

    /// Two 4-row tables joining on a domain of 2: keys are deterministic, so
    /// the expected matches can be counted by hand from the generated data.
    #[test]
    fn two_way_join_matches_nested_loop_count() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(40.0, 1.0), RelInfo::new(30.0, 1.0)]);
        q.add_edge(0, 1, 0.5); // domain 2
        let d = materialize(&q, &GenConfig::default(), &m);
        let a = d.tables[0].keys[0].as_ref().unwrap();
        let b = d.tables[1].keys[0].as_ref().unwrap();
        let expected: usize = a
            .iter()
            .map(|ka| b.iter().filter(|&&kb| kb == *ka).count())
            .sum();
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 40.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 30.0,
                cost: 1.0,
            }),
            rows: 40.0 * 30.0 * 0.5,
            cost: 10.0,
        };
        let ex = Executor::new(&d.scaled, &d, ExecConfig::default());
        let r = ex.execute(&plan).unwrap();
        assert_eq!(r.root_rows as usize, expected);
        assert_eq!(r.joins.len(), 1);
        assert_eq!(r.joins[0].output as usize, expected);
        assert_eq!(r.counters.joins, 1);
    }

    /// Morsel boundaries must not change results: a probe side that is not a
    /// multiple of the batch size still emits every match.
    #[test]
    fn batch_size_is_result_invariant() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(2_500.0, 1.0), RelInfo::new(1_333.0, 1.0)]);
        q.add_edge(0, 1, 1.0 / 37.0);
        let d = materialize(&q, &GenConfig::default(), &m);
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 2_500.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 1_333.0,
                cost: 1.0,
            }),
            rows: 2_500.0 * 1_333.0 / 37.0,
            cost: 10.0,
        };
        let mut outs = Vec::new();
        for batch in [1usize, 7, 1024, 1_000_000] {
            let ex = Executor::new(
                &d.scaled,
                &d,
                ExecConfig {
                    batch,
                    ..Default::default()
                },
            );
            let r = ex.execute(&plan).unwrap();
            outs.push(r.root_rows);
            let expected_batches = 2_500_u64.div_ceil(batch as u64);
            assert_eq!(r.stats.last().unwrap().batches, expected_batches);
        }
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    /// Uniform keys: observed selectivity matches the catalog estimate to
    /// within sampling error.
    #[test]
    fn observed_selectivity_tracks_estimate_on_uniform_keys() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(8_000.0, 1.0), RelInfo::new(8_000.0, 1.0)]);
        let sel = 1.0 / 200.0;
        q.add_edge(0, 1, sel);
        let d = materialize(
            &q,
            &GenConfig {
                seed: 3,
                ..Default::default()
            },
            &m,
        );
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 8_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 8_000.0,
                cost: 1.0,
            }),
            rows: 8_000.0 * 8_000.0 * sel,
            cost: 10.0,
        };
        let ex = Executor::new(&d.scaled, &d, ExecConfig::default());
        let r = ex.execute(&plan).unwrap();
        let obs = r.joins[0].observed_sel;
        assert!(
            (obs - sel).abs() / sel < 0.15,
            "observed {obs} vs estimated {sel}"
        );
        assert!(r.root_deviation() < 1.2, "{}", r.root_deviation());
    }

    #[test]
    fn output_cap_aborts_blowups() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![RelInfo::new(5_000.0, 1.0), RelInfo::new(5_000.0, 1.0)]);
        q.add_edge(0, 1, 1.0); // every pair matches (domain 1)
        let d = materialize(&q, &GenConfig::default(), &m);
        let plan = PlanTree::Join {
            left: Box::new(PlanTree::Scan {
                rel: 0,
                rows: 5_000.0,
                cost: 1.0,
            }),
            right: Box::new(PlanTree::Scan {
                rel: 1,
                rows: 5_000.0,
                cost: 1.0,
            }),
            rows: 25_000_000.0,
            cost: 10.0,
        };
        let ex = Executor::new(
            &d.scaled,
            &d,
            ExecConfig {
                max_output_rows: 10_000,
                ..Default::default()
            },
        );
        match ex.execute(&plan) {
            Err(ExecError::OutputCap { cap, .. }) => assert_eq!(cap, 10_000),
            other => panic!("expected OutputCap, got {other:?}"),
        }
    }
}
