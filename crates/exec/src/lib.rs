//! # mpdp-exec
//!
//! A vectorized in-memory join executor that closes the workspace's
//! estimate→observe→re-optimize loop. Every other crate optimizes against
//! *modeled* costs; this one runs the chosen join orders on real (generated)
//! tuples and feeds what it saw back into the statistics:
//!
//! * [`datagen`] — deterministic columnar table generation from catalog
//!   statistics (`u64` key columns whose domains realize the estimated
//!   selectivities, optional per-edge skew to violate them on purpose);
//! * [`executor`] — morsel-parallel, batch-at-a-time hash-join execution
//!   of any [`mpdp_core::plan::PlanTree`] over the `mpdp-parallel` barrier
//!   pool, building on the smaller modeled side, with per-operator
//!   [`executor::ExecStats`] and per-join observed selectivities that are
//!   bit-identical at any worker count;
//! * [`feedback`] — folding observations back into a
//!   [`mpdp_cost::Catalog`] as selectivity overrides, plus plan re-pricing
//!   under corrected statistics.
//!
//! The serving layer's `PlanService::observe` consumes this crate's
//! [`ExecReport`] to invalidate cached plans whose estimated root
//! cardinality proved wrong by more than a configurable factor.

#![warn(missing_docs)]

pub mod datagen;
pub mod executor;
pub mod feedback;

pub use datagen::{materialize, Dataset, ExecTable, GenConfig, SkewedEdge};
pub use executor::{
    ExecConfig, ExecError, ExecReport, ExecStats, Executor, ObservedJoin, ResultSet,
};
pub use feedback::{
    fold_observations, recost_plan, selectivity_overrides, synthesize_catalog, SyntheticCatalog,
};
