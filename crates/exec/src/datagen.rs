//! Deterministic columnar data generation from catalog statistics.
//!
//! The optimizer stack prices plans against *estimated* cardinalities; to
//! measure a plan, the executor needs actual tuples whose join behaviour
//! matches (or deliberately violates) those estimates. [`materialize`] turns
//! a query's statistics into in-memory columnar tables:
//!
//! * one `u64` **key column per incident join edge** — the equi-join
//!   predicate `sel = 1/D` is realized by drawing both endpoints' keys
//!   uniformly from a domain of `D = round(1/sel)` values, so the expected
//!   observed selectivity equals the catalog estimate exactly;
//! * one `u64` payload column plus a declared payload width, so reports can
//!   account bytes moved without materializing wide tuples;
//! * a **row cap** that scales over-large tables down while keeping the key
//!   domains untouched — per-join selectivities (and therefore the
//!   estimated-vs-observed comparison) are row-count-invariant, so capping
//!   only shrinks absolute cardinalities;
//! * optional per-edge **skew**: a configurable fraction of each endpoint's
//!   rows share one hot key, which inflates the true join selectivity far
//!   beyond the uniform-independence estimate. This is the controlled
//!   "statistics are wrong" knob the feedback loop is tested with.
//!
//! Every cell is a pure function of `(seed, relation, edge, row)` through
//! the workspace's Murmur3 finalizer — no RNG state, no iteration order, no
//! thread count anywhere in the dataflow — so the same catalog and seed
//! produce bit-identical tables in any environment.

use mpdp_core::memo::murmur3_fmix64;
use mpdp_core::query::LargeQuery;
use mpdp_cost::model::CostModel;

/// Configuration of one [`materialize`] run.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Seed folded into every generated cell.
    pub seed: u64,
    /// Per-table materialized row cap. Estimated row counts above this are
    /// clamped (key domains are not, so selectivities survive the cap).
    pub max_table_rows: usize,
    /// Declared payload width in bytes per row (for byte accounting; one
    /// `u64` payload column is materialized regardless).
    pub payload_width: usize,
    /// Edges whose key columns are generated skewed instead of uniform.
    pub skew: Vec<SkewedEdge>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            max_table_rows: 20_000,
            payload_width: 64,
            skew: Vec::new(),
        }
    }
}

/// Skew specification for one join edge: `hot_fraction` of the rows on each
/// endpoint carry the same hot key value.
///
/// With domain `D` and hot fraction `h`, the true join selectivity becomes
/// `h² + (1-h)²/(D-1)` — for `h = 0.3`, `D = 1000` that is ≈ 0.09, ninety
/// times the uniform estimate of 0.001. The catalog has no idea.
#[derive(Copy, Clone, Debug)]
pub struct SkewedEdge {
    /// One endpoint (query relation index).
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Fraction of rows (per endpoint) pinned to the hot key, in `[0, 1)`.
    pub hot_fraction: f64,
}

/// One materialized table: row count, per-edge key columns, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecTable {
    /// Materialized row count (estimated rows after the cap).
    pub rows: usize,
    /// `keys[e]` is `Some(column)` iff this relation is an endpoint of query
    /// edge `e`; the column holds one key value per row.
    pub keys: Vec<Option<Vec<u64>>>,
    /// Payload column (one `u64` per row, deterministic filler).
    pub payload: Vec<u64>,
    /// Declared payload width in bytes (for byte accounting).
    pub payload_width: usize,
}

/// A materialized dataset plus the scaled query describing it.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// One table per query relation.
    pub tables: Vec<ExecTable>,
    /// The input query with row counts replaced by the *materialized* counts
    /// (and scan costs re-priced). Plans to be executed against this dataset
    /// must be optimized for this query, so that their modeled cardinalities
    /// and the executor's observed ones live at the same scale.
    pub scaled: LargeQuery,
    /// Key domain per edge: `round(1/sel)`, clamped to at least 1.
    pub domains: Vec<u64>,
}

impl Dataset {
    /// Total materialized rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }
}

/// Deterministic cell hash: mixes `(seed, relation, edge, row, lane)`
/// without any sequential state.
#[inline]
fn cell(seed: u64, rel: u64, edge: u64, row: u64, lane: u64) -> u64 {
    let mut h = seed ^ 0x6d70_6470_2d65_7865; // "mpdp-exe"
    h = murmur3_fmix64(h.wrapping_add(rel.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    h = murmur3_fmix64(h ^ edge.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
    h = murmur3_fmix64(h ^ row.wrapping_mul(0x1656_67b1_9e37_79f9));
    murmur3_fmix64(h ^ lane)
}

/// Materializes columnar tables for `q` under `config`; `model` re-prices
/// the scaled query's scan costs. See the module docs for the scheme.
pub fn materialize(q: &LargeQuery, config: &GenConfig, model: &dyn CostModel) -> Dataset {
    let n = q.num_rels();
    let domains: Vec<u64> = q
        .edges
        .iter()
        .map(|e| (1.0 / e.sel).round().max(1.0) as u64)
        .collect();
    // Hot fraction per edge (0.0 = uniform), resolved once.
    let hot: Vec<f64> = q
        .edges
        .iter()
        .map(|e| {
            config
                .skew
                .iter()
                .find(|s| (s.u.min(s.v), s.u.max(s.v)) == (e.u.min(e.v), e.u.max(e.v)))
                .map(|s| s.hot_fraction.clamp(0.0, 0.999_999))
                .unwrap_or(0.0)
        })
        .collect();
    let mut tables = Vec::with_capacity(n);
    for (r, info) in q.rels.iter().enumerate() {
        let rows = (info.rows.round().max(1.0) as usize).min(config.max_table_rows.max(1));
        let mut keys: Vec<Option<Vec<u64>>> = vec![None; q.edges.len()];
        for (ei, e) in q.edges.iter().enumerate() {
            if e.u as usize != r && e.v as usize != r {
                continue;
            }
            let d = domains[ei];
            let h = hot[ei];
            // Hot-row decision scale: integer threshold out of 2^32.
            let hot_threshold = (h * 4_294_967_296.0) as u64;
            let col = (0..rows as u64)
                .map(|row| {
                    if d <= 1 {
                        return 0;
                    }
                    let pick = cell(config.seed, r as u64, ei as u64, row, 0);
                    if (pick & 0xffff_ffff) < hot_threshold {
                        // The hot key. All skewed rows on both endpoints
                        // collide here.
                        0
                    } else if h > 0.0 {
                        // Cold rows avoid the hot key so the two populations
                        // stay disjoint and the skew math is exact.
                        1 + cell(config.seed, r as u64, ei as u64, row, 1) % (d - 1)
                    } else {
                        cell(config.seed, r as u64, ei as u64, row, 1) % d
                    }
                })
                .collect();
            keys[ei] = Some(col);
        }
        let payload = (0..rows as u64)
            .map(|row| cell(config.seed, r as u64, u64::MAX, row, 2))
            .collect();
        tables.push(ExecTable {
            rows,
            keys,
            payload,
            payload_width: config.payload_width,
        });
    }
    // The scaled query: materialized row counts, same selectivities.
    let mut scaled = LargeQuery::new(
        tables
            .iter()
            .map(|t| {
                let rows = t.rows as f64;
                mpdp_core::query::RelInfo::new(rows, model.scan_cost(rows))
            })
            .collect(),
    );
    for e in &q.edges {
        scaled.add_edge(e.u as usize, e.v as usize, e.sel);
    }
    Dataset {
        tables,
        scaled,
        domains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_cost::PgLikeCost;
    use mpdp_workload::gen;

    #[test]
    fn same_seed_is_bit_identical() {
        let m = PgLikeCost::new();
        let q = gen::star(8, 3, &m);
        let config = GenConfig {
            seed: 99,
            max_table_rows: 5_000,
            ..Default::default()
        };
        let a = materialize(&q, &config, &m);
        let b = materialize(&q, &config, &m);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.domains, b.domains);
        // A different seed must actually change the data.
        let c = materialize(
            &q,
            &GenConfig {
                seed: 100,
                ..config
            },
            &m,
        );
        assert_ne!(a.tables, c.tables);
    }

    #[test]
    fn row_cap_scales_tables_but_not_domains() {
        let m = PgLikeCost::new();
        let q = gen::star(6, 1, &m); // fact table has 1e6..5e7 rows
        let config = GenConfig {
            seed: 1,
            max_table_rows: 1_000,
            ..Default::default()
        };
        let d = materialize(&q, &config, &m);
        assert!(d.tables.iter().all(|t| t.rows <= 1_000));
        for (ei, e) in q.edges.iter().enumerate() {
            assert_eq!(d.domains[ei], (1.0 / e.sel).round() as u64);
        }
        // The scaled query carries the materialized counts.
        for (t, r) in d.tables.iter().zip(&d.scaled.rels) {
            assert_eq!(t.rows as f64, r.rows);
        }
        assert_eq!(d.scaled.edges.len(), q.edges.len());
    }

    #[test]
    fn key_columns_exist_exactly_on_endpoints() {
        let m = PgLikeCost::new();
        let q = gen::chain(5, 2, &m);
        let d = materialize(&q, &GenConfig::default(), &m);
        for (r, t) in d.tables.iter().enumerate() {
            for (ei, e) in q.edges.iter().enumerate() {
                let endpoint = e.u as usize == r || e.v as usize == r;
                assert_eq!(t.keys[ei].is_some(), endpoint, "rel {r} edge {ei}");
                if let Some(col) = &t.keys[ei] {
                    assert_eq!(col.len(), t.rows);
                    assert!(col.iter().all(|&k| k < d.domains[ei]));
                }
            }
        }
    }

    #[test]
    fn skew_pins_roughly_hot_fraction_to_key_zero() {
        let m = PgLikeCost::new();
        let mut q = LargeQuery::new(vec![
            mpdp_core::query::RelInfo::new(10_000.0, 1.0),
            mpdp_core::query::RelInfo::new(10_000.0, 1.0),
        ]);
        q.add_edge(0, 1, 1.0 / 1000.0);
        let config = GenConfig {
            seed: 5,
            skew: vec![SkewedEdge {
                u: 0,
                v: 1,
                hot_fraction: 0.3,
            }],
            ..Default::default()
        };
        let d = materialize(&q, &config, &m);
        for t in &d.tables {
            let col = t.keys[0].as_ref().unwrap();
            let hot = col.iter().filter(|&&k| k == 0).count() as f64 / col.len() as f64;
            assert!((hot - 0.3).abs() < 0.02, "hot fraction {hot}");
        }
    }
}
