//! Vendored stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the subset its property tests use: the [`strategy::Strategy`] trait with
//! `prop_map`, range / tuple / [`any`] strategies, [`ProptestConfig`], and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic stream (seeded per test name), there is **no shrinking**,
//! and `prop_assert*` panics directly instead of routing a `TestCaseError`.
//! Failures therefore still report the exact failing values via the panic
//! message, they are just not minimized.

#![warn(missing_docs)]

/// Test-case generation plumbing.
pub mod test_runner {
    /// Deterministic SplitMix64 stream driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded from an arbitrary label (e.g. the test name), so
        /// distinct tests explore distinct inputs but reruns are stable.
        pub fn from_label(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Per-test configuration (subset: case count only).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the deterministic stream.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Full-domain strategy returned by [`crate::any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u64, u32, u16, u8, i64, i32, usize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        // `$ut` is `$t`'s unsigned counterpart: spans are computed with a
        // wrapping subtraction reinterpreted as unsigned so wide signed
        // ranges (e.g. `i32::MIN..i32::MAX`) neither overflow nor
        // sign-extend.
        ($($t:ty => $ut:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $ut as u64;
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(draw as $ut as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                    let draw = if span == 0 {
                        rng.next_u64()
                    } else {
                        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                    };
                    lo.wrapping_add(draw as $ut as $t)
                }
            }
        )*};
    }

    range_strategy!(usize => usize, u64 => u64, u32 => u32, i64 => u64, i32 => u32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// Strategy over the full domain of `T` (integers and `bool`).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

/// Defines property tests: each `fn name(binding in strategy) { body }`
/// becomes a `#[test]` running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($arg:ident in $strat:expr) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strat = $strat;
                let mut __rng =
                    $crate::test_runner::TestRng::from_label(stringify!($name));
                for __case in 0..__cfg.cases {
                    let $arg =
                        $crate::strategy::Strategy::new_value(&__strat, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; no
/// shrinking in this vendored subset).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=5, any::<u64>()).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_tuples_hold_invariants(v in pair()) {
            prop_assert!(v.0.is_multiple_of(2));
            prop_assert!((2..=10).contains(&v.0));
        }

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9) {
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn wide_signed_ranges_do_not_overflow(v in i32::MIN..i32::MAX) {
            prop_assert!(v < i32::MAX);
        }
    }

    #[test]
    fn streams_are_deterministic_per_label() {
        use crate::strategy::Strategy as _;
        use crate::test_runner::TestRng;
        let s = 0usize..100;
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        let mut c = TestRng::from_label("y");
        let va: Vec<usize> = (0..20).map(|_| s.new_value(&mut a)).collect();
        let vb: Vec<usize> = (0..20).map(|_| s.new_value(&mut b)).collect();
        let vc: Vec<usize> = (0..20).map(|_| s.new_value(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
