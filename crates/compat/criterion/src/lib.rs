//! Vendored stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the subset its benches use: [`Criterion::benchmark_group`],
//! `sample_size` / `measurement_time`, [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for
//! the configured sample count (bounded by the measurement time) and prints
//! the mean wall time per iteration — enough to eyeball regressions and keep
//! `cargo bench` working offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    deadline: Instant,
    /// Mean wall time per iteration, filled by [`Bencher::iter`].
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (up to the sample budget) and records the mean
    /// wall time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let mut done = 0u64;
        for _ in 0..self.samples.max(1) {
            black_box(f());
            done += 1;
            if Instant::now() > self.deadline {
                break;
            }
        }
        self.iterations = done;
        self.mean = start.elapsed() / done.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Caps the wall time spent per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b, input);
        println!(
            "{}/{}: {:>12.3} ms/iter ({} iterations)",
            self.name,
            id,
            b.mean.as_secs_f64() * 1e3,
            b.iterations
        );
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        println!(
            "{}/{}: {:>12.3} ms/iter ({} iterations)",
            self.name,
            id,
            b.mean.as_secs_f64() * 1e3,
            b.iterations
        );
        self
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            _parent: self,
        }
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut calls = 0usize;
        g.sample_size(3).measurement_time(Duration::from_secs(1));
        g.bench_with_input(BenchmarkId::new("id", 7), &21u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert!(calls >= 1);
    }
}
