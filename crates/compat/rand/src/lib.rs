//! Vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen` / `gen_range` / `gen_bool`, and [`seq::SliceRandom`]'s
//! `shuffle` / `choose`.
//!
//! The generator is xoshiro256** (public domain reference constants) seeded
//! through SplitMix64 — deterministic across platforms, which is all the
//! workload generators and GE-QO need. Streams do **not** byte-match the
//! real `rand` crate; every consumer in this workspace only requires
//! determinism, not a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    // `$ut` is `$t`'s unsigned counterpart: spans are computed with a
    // wrapping subtraction reinterpreted as unsigned so wide signed ranges
    // (e.g. `i32::MIN..i32::MAX`) neither overflow nor sign-extend.
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw, irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $ut as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi.wrapping_sub(lo) as $ut as u64).wrapping_add(1);
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                lo.wrapping_add(draw as $ut as $t)
            }
        }
    )*};
}

int_sample_range!(usize => usize, u64 => u64, u32 => u32, i64 => u64, i32 => u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        // `start + u*(end-start)` can round up to exactly `end` for u near
        // 1; clamp to keep the half-open contract.
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (`f64` uniform in `[0, 1)`, integers over
    /// their full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            seen_neg |= v < 0;
            seen_pos |= v > 0;
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-domain inclusive: any value is in range
        }
        assert!(seen_neg && seen_pos, "wide range collapsed to one sign");
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
