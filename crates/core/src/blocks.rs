//! Biconnected components ("blocks") of induced subgraphs.
//!
//! MPDP's general-graph enumeration (§3.2, Algorithm 3) decomposes the
//! subgraph induced by each DP set `S` into its blocks — maximal nonseparable
//! subgraphs — with the Hopcroft–Tarjan algorithm \[12\], then runs vertex-based
//! enumeration *inside* each block and edge-based `grow` across the cut
//! vertices. Per Lemma 7 this cuts the per-set work from `2^|S|` to
//! `Σ_blocks 2^|block|`.
//!
//! The implementation is an iterative DFS (no recursion, so deep chains do not
//! overflow the stack) restricted to the vertices of `S`.

use crate::bitset::RelSet;
use crate::graph::JoinGraph;

/// Result of a block decomposition of an induced subgraph.
#[derive(Clone, Debug, Default)]
pub struct BlockDecomposition {
    /// Vertex sets of the biconnected components. A bridge edge forms a
    /// two-vertex block. Blocks overlap exactly at cut vertices.
    pub blocks: Vec<RelSet>,
    /// The cut (articulation) vertices of the induced subgraph.
    pub cut_vertices: RelSet,
}

impl BlockDecomposition {
    /// The number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Largest block size (0 when there are no edges).
    pub fn max_block_size(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).max().unwrap_or(0)
    }
}

/// Finds the biconnected components of the subgraph of `g` induced by `s`
/// (the `Find-Blocks` function of Algorithm 3, line 4).
///
/// Works for disconnected `s` too (each connected component is decomposed
/// independently). Isolated vertices produce no block.
pub fn find_blocks(g: &JoinGraph, s: RelSet) -> BlockDecomposition {
    let mut disc = [0u32; 64];
    let mut low = [0u32; 64];
    let mut time: u32 = 0;
    let mut edge_stack: Vec<(u32, u32)> = Vec::new();
    let mut blocks: Vec<RelSet> = Vec::new();
    let mut cuts = RelSet::empty();

    // DFS frame: (vertex, parent-or-64, remaining neighbours to visit).
    let mut frames: Vec<(usize, usize, RelSet)> = Vec::new();

    for start in s.iter() {
        if disc[start] != 0 {
            continue;
        }
        time += 1;
        disc[start] = time;
        low[start] = time;
        let mut root_children = 0usize;
        frames.push((start, 64, g.adjacency(start).intersect(s)));

        while let Some(frame) = frames.last_mut() {
            let (v, parent, ref mut remaining) = *frame;
            if let Some(w) = remaining.first() {
                frames.last_mut().unwrap().2 = remaining.without(w);
                if w == parent {
                    continue; // skip the tree edge back to the parent
                }
                if disc[w] == 0 {
                    // Tree edge.
                    edge_stack.push((v as u32, w as u32));
                    time += 1;
                    disc[w] = time;
                    low[w] = time;
                    if v == start {
                        root_children += 1;
                    }
                    frames.push((w, v, g.adjacency(w).intersect(s)));
                } else if disc[w] < disc[v] {
                    // Back edge to an ancestor.
                    edge_stack.push((v as u32, w as u32));
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                // Done with v: propagate low to parent and maybe emit a block.
                frames.pop();
                if parent != 64 {
                    low[parent] = low[parent].min(low[v]);
                    if low[v] >= disc[parent] {
                        // parent separates v's subtree: pop one block.
                        let mut block = RelSet::empty();
                        while let Some(&(a, b)) = edge_stack.last() {
                            // Edges of the block are exactly those pushed at
                            // or after the tree edge (parent, v).
                            if disc[a as usize] >= disc[v]
                                || (a as usize == parent && b as usize == v)
                            {
                                block = block.with(a as usize).with(b as usize);
                                edge_stack.pop();
                                if a as usize == parent && b as usize == v {
                                    break;
                                }
                            } else {
                                break;
                            }
                        }
                        if !block.is_empty() {
                            blocks.push(block);
                        }
                        if parent != start {
                            cuts = cuts.with(parent);
                        }
                    }
                }
            }
        }
        if root_children >= 2 {
            cuts = cuts.with(start);
        }
    }

    BlockDecomposition {
        blocks,
        cut_vertices: cuts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure5_graph() -> JoinGraph {
        let mut g = JoinGraph::new(9);
        for &(u, v) in &[
            (1, 2),
            (2, 4),
            (4, 3),
            (3, 1),
            (4, 5),
            (5, 9),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 6),
        ] {
            g.add_edge(u - 1, v - 1, 0.1);
        }
        g
    }

    fn sorted_blocks(d: &BlockDecomposition) -> Vec<u64> {
        let mut v: Vec<u64> = d.blocks.iter().map(|b| b.bits()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn figure5_full_decomposition() {
        // §2.4: blocks {1,2,3,4}; {4,5}; {5,9}; {6,7,8,9}, cuts {4,5,9}.
        let g = figure5_graph();
        let d = find_blocks(&g, g.all_vertices());
        let expect: Vec<u64> = vec![
            RelSet::from_indices([0, 1, 2, 3]).bits(),
            RelSet::from_indices([3, 4]).bits(),
            RelSet::from_indices([4, 8]).bits(),
            RelSet::from_indices([5, 6, 7, 8]).bits(),
        ]
        .into_iter()
        .collect();
        let mut e = expect.clone();
        e.sort_unstable();
        assert_eq!(sorted_blocks(&d), e);
        assert_eq!(d.cut_vertices, RelSet::from_indices([3, 4, 8]));
    }

    #[test]
    fn figure5_induced_subset() {
        // §3.2 example: S = {1,2,3,4,5} -> blocks {1,2,3,4} and {4,5}.
        let g = figure5_graph();
        let s = RelSet::from_indices([0, 1, 2, 3, 4]);
        let d = find_blocks(&g, s);
        let mut e = vec![
            RelSet::from_indices([0, 1, 2, 3]).bits(),
            RelSet::from_indices([3, 4]).bits(),
        ];
        e.sort_unstable();
        assert_eq!(sorted_blocks(&d), e);
        assert_eq!(d.cut_vertices, RelSet::singleton(3));
    }

    #[test]
    fn tree_decomposes_into_bridge_blocks() {
        // A star: every edge is its own block; the hub is the only cut vertex.
        let mut g = JoinGraph::new(5);
        for i in 1..5 {
            g.add_edge(0, i, 0.1);
        }
        let d = find_blocks(&g, g.all_vertices());
        assert_eq!(d.num_blocks(), 4);
        for b in &d.blocks {
            assert_eq!(b.len(), 2);
            assert!(b.contains(0));
        }
        assert_eq!(d.cut_vertices, RelSet::singleton(0));
    }

    #[test]
    fn cycle_is_a_single_block() {
        let mut g = JoinGraph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6, 0.1);
        }
        let d = find_blocks(&g, g.all_vertices());
        assert_eq!(d.num_blocks(), 1);
        assert_eq!(d.blocks[0], g.all_vertices());
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn clique_is_a_single_block() {
        let mut g = JoinGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j, 0.1);
            }
        }
        let d = find_blocks(&g, g.all_vertices());
        assert_eq!(d.num_blocks(), 1);
        assert_eq!(d.max_block_size(), 5);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn two_vertex_edge() {
        let mut g = JoinGraph::new(2);
        g.add_edge(0, 1, 0.5);
        let d = find_blocks(&g, g.all_vertices());
        assert_eq!(d.num_blocks(), 1);
        assert_eq!(d.blocks[0], RelSet::from_indices([0, 1]));
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn isolated_vertices_and_disconnected_input() {
        let mut g = JoinGraph::new(5);
        g.add_edge(0, 1, 0.5);
        g.add_edge(2, 3, 0.5);
        // Vertex 4 isolated.
        let d = find_blocks(&g, g.all_vertices());
        assert_eq!(d.num_blocks(), 2);
        assert!(d.cut_vertices.is_empty());
    }

    #[test]
    fn restriction_to_subset_ignores_outside_edges() {
        let g = figure5_graph();
        // S = {4,5,9} (paper {5,6,10}? no — idx 3,4,8 = paper 4,5,9): chain
        // 4-5-9 via bridges -> two bridge blocks, cut vertex 5 (idx 4).
        let s = RelSet::from_indices([3, 4, 8]);
        let d = find_blocks(&g, s);
        let mut e = vec![
            RelSet::from_indices([3, 4]).bits(),
            RelSet::from_indices([4, 8]).bits(),
        ];
        e.sort_unstable();
        assert_eq!(sorted_blocks(&d), e);
        assert_eq!(d.cut_vertices, RelSet::singleton(4));
    }

    #[test]
    fn blocks_partition_induced_edges() {
        // Every induced edge belongs to exactly one block (property used by
        // Lemma 4's proof).
        let g = figure5_graph();
        for s in [
            g.all_vertices(),
            RelSet::from_indices([0, 1, 2, 3, 4]),
            RelSet::from_indices([3, 4, 8, 5, 6, 7]),
        ] {
            let d = find_blocks(&g, s);
            let mut edge_count = 0;
            for b in &d.blocks {
                edge_count += g.induced_edge_count(*b);
            }
            assert_eq!(edge_count, g.induced_edge_count(s));
        }
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let mut g = JoinGraph::new(5);
        g.add_edge(0, 1, 0.1);
        g.add_edge(1, 2, 0.1);
        g.add_edge(2, 0, 0.1);
        g.add_edge(2, 3, 0.1);
        g.add_edge(3, 4, 0.1);
        g.add_edge(4, 2, 0.1);
        let d = find_blocks(&g, g.all_vertices());
        let mut e = vec![
            RelSet::from_indices([0, 1, 2]).bits(),
            RelSet::from_indices([2, 3, 4]).bits(),
        ];
        e.sort_unstable();
        assert_eq!(sorted_blocks(&d), e);
        assert_eq!(d.cut_vertices, RelSet::singleton(2));
    }
}
