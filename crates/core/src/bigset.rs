//! Dynamically-sized bitmap sets for very large queries.
//!
//! The heuristic optimizers (IDP2, UnionDP, GOO, …) handle queries with up to
//! ~1000 relations (Tables 1 and 2 of the paper), well beyond the 64-relation
//! width of [`crate::bitset::RelSet`]. `BigSet` is a simple `Vec<u64>`-backed
//! bitmap used for partition membership and composite-relation tracking.

use std::fmt;

/// A growable bitmap set over `usize` indices.
///
/// Equality and hashing ignore trailing zero words, so two sets with the same
/// elements are equal regardless of the insert/remove history.
#[derive(Clone, Default)]
pub struct BigSet {
    words: Vec<u64>,
}

impl PartialEq for BigSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for BigSet {}

impl std::hash::Hash for BigSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word for history independence.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

impl BigSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BigSet { words: Vec::new() }
    }

    /// Creates an empty set pre-sized for indices `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BigSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Creates `{i}`.
    pub fn singleton(i: usize) -> Self {
        let mut s = BigSet::with_capacity(i + 1);
        s.insert(i);
        s
    }

    /// Builds a set from indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BigSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    fn ensure(&mut self, word: usize) {
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
    }

    /// Adds `i`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.ensure(w);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BigSet) {
        self.ensure(other.words.len().saturating_sub(1));
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Returns `self ∪ other`.
    pub fn union(&self, other: &BigSet) -> BigSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// `true` if the sets share no element.
    pub fn is_disjoint(&self, other: &BigSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &BigSet) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// Iterates over element indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BigSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        BigSet::from_indices(iter)
    }
}

impl fmt::Debug for BigSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BigSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn large_indices_cross_word_boundary() {
        let mut s = BigSet::new();
        s.insert(63);
        s.insert(64);
        s.insert(999);
        assert_eq!(s.len(), 3);
        assert!(s.contains(999));
        assert!(!s.contains(998));
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![63, 64, 999]);
    }

    #[test]
    fn union_and_disjoint() {
        let a = BigSet::from_indices([1, 100]);
        let b = BigSet::from_indices([2, 200]);
        assert!(a.is_disjoint(&b));
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        assert!(u.contains(100) && u.contains(200));
        assert!(!u.is_disjoint(&a));
    }

    #[test]
    fn subset_with_different_lengths() {
        let a = BigSet::from_indices([1, 2]);
        let b = BigSet::from_indices([1, 2, 300]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(BigSet::new().is_subset(&a));
    }

    #[test]
    fn equality_ignores_history() {
        let mut a = BigSet::from_indices([1, 2]);
        a.insert(999);
        a.remove(999);
        let b = BigSet::from_indices([1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &BigSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }
}
