//! Fixed-width bitmap relation sets.
//!
//! The exact dynamic-programming algorithms in this workspace operate on at
//! most 64 relations (the paper's exact experiments top out at ~30), so a
//! relation set is a single machine word. This mirrors both PostgreSQL's
//! `Bitmapset` for small sets and the fixed-width bitmaps of the paper's GPU
//! implementation (§5: "sets of relations ... are represented using a
//! fixed-width bitmap sets").

use std::fmt;

/// Maximum number of relations representable by a [`RelSet`].
pub const MAX_RELS: usize = 64;

/// A set of base relations, identified by indices `0..64`, stored as a bitmap.
///
/// `RelSet` is `Copy` and all operations are branch-free word ops, which is
/// what makes the inner loops of the DP algorithms cheap.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(pub u64);

impl RelSet {
    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn empty() -> Self {
        RelSet(0)
    }

    /// Creates the set `{i}`.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= 64`.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        debug_assert!(i < MAX_RELS, "relation index {i} out of range");
        RelSet(1u64 << i)
    }

    /// Creates the full set `{0, 1, .., n-1}`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= MAX_RELS);
        if n == MAX_RELS {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = RelSet::empty();
        for i in iter {
            s = s.with(i);
        }
        s
    }

    /// Returns `true` if the set has no elements.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of elements (population count).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// `self ∪ {i}`.
    #[inline]
    pub const fn with(self, i: usize) -> Self {
        RelSet(self.0 | (1u64 << i))
    }

    /// `self \ {i}`.
    #[inline]
    pub const fn without(self, i: usize) -> Self {
        RelSet(self.0 & !(1u64 << i))
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        RelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        RelSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: Self) -> Self {
        RelSet(self.0 & !other.0)
    }

    /// `true` if `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` if the two sets share no element.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// `true` if the two sets share at least one element.
    #[inline]
    pub const fn overlaps(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Index of the lowest element. Returns `None` on the empty set.
    #[inline]
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The singleton set holding only the lowest element (empty stays empty).
    #[inline]
    pub const fn lowest_bit(self) -> Self {
        RelSet(self.0 & self.0.wrapping_neg())
    }

    /// Iterates over element indices in increasing order.
    #[inline]
    pub fn iter(self) -> RelIter {
        RelIter(self.0)
    }

    /// Iterates over all **non-empty** subsets of `self`, in descending bitmask
    /// order, ending with the subsets closest to the empty set. Includes
    /// `self` itself; see [`RelSet::proper_subsets`] to exclude it.
    ///
    /// This is the classic `sub = (sub - 1) & mask` enumeration used by DPSUB
    /// (Algorithm 1, line 8): the paper enumerates `S_left` over the powerset
    /// of `S`; the visiting order is irrelevant for correctness or counters.
    #[inline]
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            next: self.0,
            done: self.0 == 0,
        }
    }

    /// Iterates over all non-empty **proper** subsets of `self`.
    #[inline]
    pub fn proper_subsets(self) -> impl Iterator<Item = RelSet> {
        let full = self;
        self.subsets().filter(move |s| *s != full)
    }

    /// Iterates over all non-empty subsets of `self` in **ascending** numeric
    /// order. Because `A ⊂ B` implies `A.bits() < B.bits()`, this visits
    /// every subset before any of its supersets — the enumeration order
    /// DPCCP's correctness proof relies on (Moerkotte–Neumann require
    /// "subsets in increasing integer order").
    #[inline]
    pub fn subsets_ascending(self) -> AscSubsetIter {
        AscSubsetIter {
            mask: self.0,
            cur: 0,
            done: self.0 == 0,
        }
    }

    /// The underlying bit pattern.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        RelSet::from_indices(iter)
    }
}

impl std::ops::BitOr for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for RelSet {
    type Output = RelSet;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the element indices of a [`RelSet`].
pub struct RelIter(u64);

impl Iterator for RelIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelIter {}

/// Iterator over all non-empty subsets of a mask (see [`RelSet::subsets`]).
pub struct SubsetIter {
    mask: u64,
    next: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let cur = self.next;
        if cur == 0 {
            self.done = true;
            return None;
        }
        self.next = (cur - 1) & self.mask;
        if self.next == 0 {
            self.done = true;
        }
        Some(RelSet(cur))
    }
}

/// Iterator over all non-empty subsets of a mask in ascending numeric order
/// (see [`RelSet::subsets_ascending`]).
pub struct AscSubsetIter {
    mask: u64,
    cur: u64,
    done: bool,
}

impl Iterator for AscSubsetIter {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        // Standard trick: (cur - mask) & mask steps to the next submask in
        // increasing numeric value, wrapping to 0 after the full mask.
        self.cur = self.cur.wrapping_sub(self.mask) & self.mask;
        if self.cur == 0 {
            self.done = true;
            return None;
        }
        if self.cur == self.mask {
            self.done = true;
        }
        Some(RelSet(self.cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let e = RelSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.subsets().count(), 0);
    }

    #[test]
    fn singleton_and_membership() {
        let s = RelSet::singleton(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(5));
    }

    #[test]
    fn singleton_highest_bit() {
        let s = RelSet::singleton(63);
        assert!(s.contains(63));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_boundaries() {
        assert_eq!(RelSet::first_n(0), RelSet::empty());
        assert_eq!(RelSet::first_n(3).len(), 3);
        assert_eq!(RelSet::first_n(64).len(), 64);
        assert!(RelSet::first_n(64).contains(63));
    }

    #[test]
    fn union_intersect_difference() {
        let a = RelSet::from_indices([0, 1, 2]);
        let b = RelSet::from_indices([2, 3]);
        assert_eq!(a.union(b), RelSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), RelSet::singleton(2));
        assert_eq!(a.difference(b), RelSet::from_indices([0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersect(b));
        assert_eq!(a - b, a.difference(b));
    }

    #[test]
    fn subset_disjoint_relations() {
        let a = RelSet::from_indices([1, 3]);
        let b = RelSet::from_indices([0, 1, 2, 3]);
        let c = RelSet::from_indices([4, 5]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(a.is_disjoint(c));
        assert!(!a.is_disjoint(b));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        // Empty set is a subset of everything and disjoint from everything.
        assert!(RelSet::empty().is_subset(a));
        assert!(RelSet::empty().is_disjoint(a));
    }

    #[test]
    fn with_without() {
        let s = RelSet::empty().with(2).with(7).without(2);
        assert_eq!(s, RelSet::singleton(7));
        // Removing an absent element is a no-op.
        assert_eq!(s.without(3), s);
    }

    #[test]
    fn iter_ascending() {
        let s = RelSet::from_indices([9, 1, 4]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 4, 9]);
    }

    #[test]
    fn subsets_counts_and_contents() {
        let s = RelSet::from_indices([0, 2, 5]);
        let subs: Vec<RelSet> = s.subsets().collect();
        // 2^3 - 1 non-empty subsets.
        assert_eq!(subs.len(), 7);
        for sub in &subs {
            assert!(!sub.is_empty());
            assert!(sub.is_subset(s));
        }
        // All distinct.
        let mut bits: Vec<u64> = subs.iter().map(|s| s.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 7);
    }

    #[test]
    fn proper_subsets_excludes_self() {
        let s = RelSet::from_indices([1, 2]);
        let subs: Vec<RelSet> = s.proper_subsets().collect();
        assert_eq!(subs.len(), 2);
        assert!(!subs.contains(&s));
    }

    #[test]
    fn ascending_subsets_order_and_completeness() {
        let s = RelSet::from_indices([0, 2, 5]);
        let subs: Vec<u64> = s.subsets_ascending().map(|x| x.bits()).collect();
        assert_eq!(subs.len(), 7);
        // Strictly increasing numeric order.
        for w in subs.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Same family as the descending iterator.
        let mut desc: Vec<u64> = s.subsets().map(|x| x.bits()).collect();
        desc.sort_unstable();
        assert_eq!(subs, desc);
        // Last element is the full mask; empty set never yielded.
        assert_eq!(*subs.last().unwrap(), s.bits());
        assert!(RelSet::empty().subsets_ascending().next().is_none());
    }

    #[test]
    fn lowest_bit() {
        let s = RelSet::from_indices([3, 6]);
        assert_eq!(s.lowest_bit(), RelSet::singleton(3));
        assert_eq!(RelSet::empty().lowest_bit(), RelSet::empty());
    }

    #[test]
    fn display_format() {
        let s = RelSet::from_indices([1, 3, 5]);
        assert_eq!(format!("{s}"), "{1,3,5}");
        assert_eq!(format!("{}", RelSet::empty()), "{}");
    }

    #[test]
    fn from_iterator_trait() {
        let s: RelSet = [2usize, 4].into_iter().collect();
        assert_eq!(s, RelSet::from_indices([2, 4]));
    }
}
