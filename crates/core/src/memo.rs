//! The DP memo table.
//!
//! The paper's GPU implementation (§5) keeps the memo as "a simple
//! open-addressing hash table" keyed by the relation-set bitmap and hashed
//! with Murmur3. We use the same structure for *all* optimizers (CPU
//! sequential, CPU parallel and simulated GPU) so that memory behaviour and
//! results are identical across them.
//!
//! Each entry stores the best plan found so far for a set `S`: its cost, its
//! (split-invariant) output cardinality and the left side of the winning
//! split. The right side is implicit (`S \ left`), which keeps an entry at 32
//! bytes. Plans are reconstructed by walking the table from the root set —
//! exactly how the paper extracts the final join tree from GPU memory.
//!
//! Two implementations share the [`MemoStore`] interface: this module's
//! single-threaded [`MemoTable`] and the lock-free
//! [`AtomicMemo`](crate::atomic_memo::AtomicMemo) that the parallel backends
//! update in place (the CPU analogue of the paper's global hash table with
//! `atomicMin`). Both break best-plan ties on `(cost, left.bits())` so the
//! winning split is a pure function of the candidate *set*, never of the
//! order — sequential, thread-interleaved or simulated-SIMT — in which
//! candidates arrive.

use crate::bitset::RelSet;

/// Murmur3 64-bit finalizer — the hash the paper uses for its GPU memo.
#[inline]
pub fn murmur3_fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Maps an `f64` cost to a `u64` whose unsigned order matches the float
/// order (the standard IEEE-754 total-order fold).
///
/// For non-negative finite floats the raw bit pattern is already
/// monotonically increasing, so on the costs a cost model produces the fold
/// reduces to setting the sign bit — a constant offset that preserves every
/// comparison (it is *not* the identity on the bits; always compare two
/// folded values, never a folded value against raw `to_bits`). For negative
/// inputs the fold inverts all bits, keeping the mapping a total order even
/// for `-0.0` or negative values rather than relying on the caller never
/// producing them.
#[inline]
pub fn ordered_cost_bits(cost: f64) -> u64 {
    let b = cost.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// The `(cost, left)` ordering key under which every memo keeps the minimum:
/// lexicographic on (order-preserving cost bits, left bitmap). All stores —
/// sequential [`MemoTable`] and concurrent
/// [`AtomicMemo`](crate::atomic_memo::AtomicMemo) — use this exact key, which
/// is what makes plans bit-identical across backends and worker counts even
/// on exact cost ties.
#[inline]
pub fn candidate_key(cost: f64, left: RelSet) -> (u64, u64) {
    (ordered_cost_bits(cost), left.bits())
}

/// Point-in-time health metrics of a memo store (observability for the
/// bench reports; none of these feed back into planning).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoHealth {
    /// Occupied entries.
    pub entries: usize,
    /// Total slots (open-addressing capacity).
    pub slots: usize,
    /// Cumulative linear-probe steps taken by inserts.
    pub probes: u64,
    /// Cumulative CAS retries (always 0 for the single-threaded table).
    pub cas_retries: u64,
}

impl MemoHealth {
    /// `entries / slots` (0.0 for an empty table).
    pub fn load_factor(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.entries as f64 / self.slots as f64
        }
    }
}

/// The interface every DP backend's memo speaks: leaf loading, best-plan
/// lookup, the Algorithm-1 `insert_if_better` update, and capacity
/// management. Implemented by the single-threaded [`MemoTable`] and the
/// lock-free [`AtomicMemo`](crate::atomic_memo::AtomicMemo); `mpdp-dp`'s
/// shared plumbing (`init_memo` / `emit_pair` / `finish` /
/// [`extract_plan`](crate::plan::extract_plan)) is generic over it, so the
/// sequential algorithms are untouched while the parallel ones swap in the
/// shared-state table.
///
/// Writes take `&mut self` here; `AtomicMemo` additionally exposes the same
/// operations through `&self` for concurrent workers (the trait methods
/// simply delegate).
pub trait MemoStore {
    /// Creates a store sized for roughly `expected` entries.
    fn with_capacity(expected: usize) -> Self
    where
        Self: Sized;

    /// Number of entries.
    fn len(&self) -> usize;

    /// `true` if no entry is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the best entry for `set`.
    fn get(&self, set: RelSet) -> Option<MemoEntry>;

    /// Inserts a leaf entry for a base relation.
    fn insert_leaf(&mut self, rel: usize, rows: f64, cost: f64);

    /// Records a candidate plan for `set`, keeping it only if its
    /// [`candidate_key`] beats the incumbent's. Returns `true` if the
    /// candidate became the new best.
    fn insert_if_better(&mut self, set: RelSet, left: RelSet, cost: f64, rows: f64) -> bool;

    /// Ensures capacity for `additional` more entries without growth during
    /// the insertions (level-structured backends call this once per level).
    fn reserve(&mut self, additional: usize);

    /// Current health metrics.
    fn health(&self) -> MemoHealth;
}

/// One memo entry: the best plan known for the key set.
#[derive(Copy, Clone, Debug)]
pub struct MemoEntry {
    /// The relation set (never empty for occupied slots).
    pub set: RelSet,
    /// Left side of the best split; `RelSet::EMPTY` marks a leaf (base rel).
    pub left: RelSet,
    /// Total cost of the best plan for `set`.
    pub cost: f64,
    /// Estimated output rows of `set` (identical for all plans of `set`).
    pub rows: f64,
}

impl MemoEntry {
    /// The right side of the best split (empty for leaves).
    #[inline]
    pub fn right(&self) -> RelSet {
        self.set.difference(self.left)
    }

    /// `true` if this entry is a base relation.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left.is_empty()
    }
}

/// Open-addressing (linear probing) memo table keyed by `RelSet`.
#[derive(Clone, Debug)]
pub struct MemoTable {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
    /// Number of probe steps performed (useful for the GPU memory model).
    probes: u64,
}

#[derive(Copy, Clone, Debug)]
struct Slot {
    key: u64, // 0 = empty (the empty set is never memoized)
    left: u64,
    cost: f64,
    rows: f64,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    left: 0,
    cost: 0.0,
    rows: 0.0,
};

impl MemoTable {
    /// Creates a table sized for roughly `expected` entries.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        MemoTable {
            slots: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
            len: 0,
            probes: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entry is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total linear-probe steps taken so far (diagnostics).
    #[inline]
    pub fn probe_count(&self) -> u64 {
        self.probes
    }

    fn grow_table(&mut self) {
        self.rehash_to((self.mask + 1) * 2);
    }

    fn rehash_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap > self.slots.len());
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; cap]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for s in old {
            if s.key != 0 {
                self.raw_insert(s);
            }
        }
    }

    /// Ensures capacity for `additional` more entries without any growth
    /// rehash during the insertions. Level-structured optimizers call this
    /// once per DP level with the enumerator's connected-set count, so the
    /// table is sized up front instead of growing mid-level.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        // Same 70% load-factor bound the insert path enforces.
        let min_slots = (needed + 1) * 10 / 7 + 1;
        if min_slots > self.slots.len() {
            self.rehash_to(min_slots.next_power_of_two());
        }
    }

    fn raw_insert(&mut self, slot: Slot) {
        let mut idx = (murmur3_fmix64(slot.key) as usize) & self.mask;
        loop {
            if self.slots[idx].key == 0 {
                self.slots[idx] = slot;
                self.len += 1;
                return;
            }
            if self.slots[idx].key == slot.key {
                self.slots[idx] = slot;
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Looks up the best entry for `set`.
    pub fn get(&self, set: RelSet) -> Option<MemoEntry> {
        if set.is_empty() {
            return None;
        }
        let mut idx = (murmur3_fmix64(set.bits()) as usize) & self.mask;
        loop {
            let s = self.slots[idx];
            if s.key == 0 {
                return None;
            }
            if s.key == set.bits() {
                return Some(MemoEntry {
                    set,
                    left: RelSet(s.left),
                    cost: s.cost,
                    rows: s.rows,
                });
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Inserts a leaf entry for a base relation.
    pub fn insert_leaf(&mut self, rel: usize, rows: f64, cost: f64) {
        self.upsert(Slot {
            key: RelSet::singleton(rel).bits(),
            left: 0,
            cost,
            rows,
        });
    }

    /// Records a candidate plan for `set` with the given split and cost,
    /// keeping it only if it beats the incumbent (Algorithm 1, lines 20–21)
    /// under the deterministic [`candidate_key`] order — strictly cheaper
    /// wins, exact cost ties go to the smaller `left` bitmap. Returns `true`
    /// if the candidate became the new best.
    pub fn insert_if_better(&mut self, set: RelSet, left: RelSet, cost: f64, rows: f64) -> bool {
        debug_assert!(!set.is_empty() && left.is_subset(set));
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow_table();
        }
        let mut idx = (murmur3_fmix64(set.bits()) as usize) & self.mask;
        loop {
            self.probes += 1;
            let s = &mut self.slots[idx];
            if s.key == 0 {
                *s = Slot {
                    key: set.bits(),
                    left: left.bits(),
                    cost,
                    rows,
                };
                self.len += 1;
                return true;
            }
            if s.key == set.bits() {
                if candidate_key(cost, left) < (ordered_cost_bits(s.cost), s.left) {
                    s.left = left.bits();
                    s.cost = cost;
                    s.rows = rows;
                    return true;
                }
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn upsert(&mut self, slot: Slot) {
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow_table();
        }
        self.raw_insert(slot);
    }

    /// Iterates over all occupied entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = MemoEntry> + '_ {
        self.slots.iter().filter(|s| s.key != 0).map(|s| MemoEntry {
            set: RelSet(s.key),
            left: RelSet(s.left),
            cost: s.cost,
            rows: s.rows,
        })
    }
}

impl MemoStore for MemoTable {
    fn with_capacity(expected: usize) -> Self {
        MemoTable::with_capacity(expected)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, set: RelSet) -> Option<MemoEntry> {
        MemoTable::get(self, set)
    }

    fn insert_leaf(&mut self, rel: usize, rows: f64, cost: f64) {
        MemoTable::insert_leaf(self, rel, rows, cost)
    }

    fn insert_if_better(&mut self, set: RelSet, left: RelSet, cost: f64, rows: f64) -> bool {
        MemoTable::insert_if_better(self, set, left, cost, rows)
    }

    fn reserve(&mut self, additional: usize) {
        MemoTable::reserve(self, additional)
    }

    fn health(&self) -> MemoHealth {
        MemoHealth {
            entries: self.len,
            slots: self.slots.len(),
            probes: self.probes,
            cas_retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur_mixes() {
        // Finalizer is a bijection; a few sanity spot checks.
        assert_ne!(murmur3_fmix64(1), 1);
        assert_ne!(murmur3_fmix64(1), murmur3_fmix64(2));
        assert_eq!(murmur3_fmix64(0), 0); // fixed point of the finalizer
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut m = MemoTable::with_capacity(4);
        m.insert_leaf(3, 100.0, 7.0);
        let e = m.get(RelSet::singleton(3)).unwrap();
        assert!(e.is_leaf());
        assert_eq!(e.rows, 100.0);
        assert_eq!(e.cost, 7.0);
        assert!(m.get(RelSet::singleton(2)).is_none());
    }

    #[test]
    fn insert_if_better_keeps_minimum() {
        let mut m = MemoTable::with_capacity(4);
        let s = RelSet::from_indices([0, 1]);
        let l = RelSet::singleton(0);
        let r = RelSet::singleton(1);
        assert!(m.insert_if_better(s, l, 10.0, 5.0));
        assert!(!m.insert_if_better(s, r, 12.0, 5.0)); // worse: rejected
        assert_eq!(m.get(s).unwrap().left, l);
        assert!(m.insert_if_better(s, r, 8.0, 5.0)); // better: replaces
        let e = m.get(s).unwrap();
        assert_eq!(e.left, r);
        assert_eq!(e.cost, 8.0);
        assert_eq!(e.right(), l);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn ties_break_on_left_bits() {
        let mut m = MemoTable::with_capacity(4);
        let s = RelSet::from_indices([0, 1, 2]);
        let hi = RelSet::from_indices([1, 2]);
        let lo = RelSet::singleton(0);
        assert!(m.insert_if_better(s, hi, 5.0, 1.0));
        // Equal cost, smaller left bitmap: replaces.
        assert!(m.insert_if_better(s, lo, 5.0, 1.0));
        assert_eq!(m.get(s).unwrap().left, lo);
        // Equal cost, larger left bitmap: rejected.
        assert!(!m.insert_if_better(s, hi, 5.0, 1.0));
        // Exact duplicate: rejected (not an improvement).
        assert!(!m.insert_if_better(s, lo, 5.0, 1.0));
        assert_eq!(m.get(s).unwrap().left, lo);
    }

    #[test]
    fn ordered_cost_bits_monotone() {
        let vals = [-1.0, -0.0, 0.0, 1e-300, 0.5, 1.0, 2.0, 1e300, f64::INFINITY];
        for w in vals.windows(2) {
            // Strict except the -0.0/0.0 pair, which the total order splits.
            assert!(
                ordered_cost_bits(w[0]) < ordered_cost_bits(w[1]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = MemoTable::with_capacity(2);
        // Insert enough distinct sets to force several growths.
        for i in 0..500u64 {
            let set = RelSet(i + 1);
            m.insert_if_better(set, set.lowest_bit(), i as f64, 1.0);
        }
        assert_eq!(m.len(), 500);
        for i in 0..500u64 {
            let e = m.get(RelSet(i + 1)).unwrap();
            assert_eq!(e.cost, i as f64);
        }
    }

    #[test]
    fn iter_visits_all() {
        let mut m = MemoTable::with_capacity(8);
        for i in 0..20u64 {
            m.insert_if_better(RelSet(i + 1), RelSet(i + 1).lowest_bit(), 1.0, 1.0);
        }
        assert_eq!(m.iter().count(), 20);
    }

    #[test]
    fn reserve_prevents_mid_batch_growth() {
        let mut m = MemoTable::with_capacity(2);
        m.reserve(300);
        let slots_after_reserve = m.slots.len();
        assert!(slots_after_reserve * 7 >= 300 * 10); // ≤70% load for 300
        for i in 0..300u64 {
            m.insert_if_better(RelSet(i + 1), RelSet(i + 1).lowest_bit(), i as f64, 1.0);
        }
        assert_eq!(m.slots.len(), slots_after_reserve, "no growth mid-batch");
        assert_eq!(m.len(), 300);
        for i in 0..300u64 {
            assert_eq!(m.get(RelSet(i + 1)).unwrap().cost, i as f64);
        }
        // A no-op reserve keeps the allocation.
        m.reserve(1);
        assert_eq!(m.slots.len(), slots_after_reserve);
    }

    #[test]
    fn empty_set_lookup_is_none() {
        let m = MemoTable::with_capacity(4);
        assert!(m.get(RelSet::empty()).is_none());
    }
}
