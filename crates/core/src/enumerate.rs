//! Connected-subset frontier enumeration.
//!
//! The level-synchronous DP algorithms (DPSUB, MPDP and their parallel /
//! simulated-GPU forms) need, per level `i`, every *connected* vertex set of
//! size `i`. The paper's vertex-based enumeration unranks all `C(n, i)`
//! candidate subsets and filters the disconnected ones — fine on cliques
//! where every subset survives, but catastrophic on sparse shapes: a chain
//! of 20 relations has 210 connected subsets yet the filter walks all
//! `2^20` candidates.
//!
//! [`FrontierEnumerator`] replaces generate-and-filter with frontier
//! expansion: level `i+1`'s connected sets are obtained by extending each
//! level-`i` connected set `S` with one vertex of its neighbourhood `N(S)`.
//! Every candidate produced this way is connected *by construction*, so no
//! connectivity check is ever run; duplicates (the same set reached from
//! several sub-sets) are discarded through a Murmur3 open-addressing
//! [`SeenTable`] — the same hashing machinery as the memo table
//! (`crate::memo`). Work per level is `O(Σ_S |N(S)|)` — proportional to the
//! number of connected sets times average degree, never to `C(n, i)`.
//!
//! Completeness: every connected set `T` with `|T| ≥ 2` has a spanning tree,
//! and removing one of its leaves yields a connected `|T|-1`-subset whose
//! neighbourhood contains the removed vertex — so `T` is generated at least
//! once. Each level is sorted ascending by bitmap, which is exactly the
//! order Gosper's hack ([`crate::combinatorics::KSubsets`]) visits the same
//! sets in, making frontier and filter enumeration *bit-identical* from the
//! consuming DP's point of view.

use crate::bitset::RelSet;
use crate::graph::JoinGraph;
use crate::memo::murmur3_fmix64;

/// How a level-structured DP backend enumerates each level's connected sets.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum EnumerationMode {
    /// Connected-subgraph frontier expansion (this module) — work scales
    /// with the number of connected sets. The default.
    #[default]
    Frontier,
    /// Legacy generate-and-filter: unrank all `C(n, i)` subsets per level
    /// and drop the disconnected ones. Kept for the paper's `unranked`
    /// counter ablations (Figure 12 / §7) and as the reference
    /// implementation the frontier path is verified against.
    Unranked,
}

/// Open-addressing hash *set* of `u64` keys (Murmur3-mixed, linear probing)
/// — the membership-only sibling of [`crate::memo::MemoTable`], used to
/// deduplicate frontier expansion. Key `0` (the empty set) is reserved as
/// the empty-slot marker, which is safe because expansion never produces an
/// empty set.
#[derive(Clone, Debug)]
pub struct SeenTable {
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

impl SeenTable {
    /// Creates a table sized for roughly `expected` keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        SeenTable {
            slots: vec![0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of distinct keys inserted.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no key has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all keys, re-sizing for roughly `expected` upcoming inserts
    /// (reuses the allocation when it is already big enough).
    pub fn clear_for(&mut self, expected: usize) {
        let cap = (expected.max(8) * 2).next_power_of_two();
        if cap > self.slots.len() {
            self.slots = vec![0; cap];
            self.mask = cap - 1;
        } else {
            self.slots.fill(0);
        }
        self.len = 0;
    }

    /// Inserts `key`, returning `true` if it was not present before.
    ///
    /// # Panics
    /// Debug-panics on the reserved key `0`.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        debug_assert_ne!(key, 0, "key 0 is the empty-slot marker");
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mut idx = (murmur3_fmix64(key) as usize) & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                self.slots[idx] = key;
                self.len += 1;
                return true;
            }
            if slot == key {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// `true` if `key` has been inserted.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let mut idx = (murmur3_fmix64(key) as usize) & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                return false;
            }
            if slot == key {
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![0; (self.mask + 1) * 2]);
        self.mask = self.slots.len() - 1;
        for key in old {
            if key != 0 {
                let mut idx = (murmur3_fmix64(key) as usize) & self.mask;
                while self.slots[idx] != 0 {
                    idx = (idx + 1) & self.mask;
                }
                self.slots[idx] = key;
            }
        }
    }
}

/// Level-by-level connected-subset enumerator over a [`JoinGraph`].
///
/// Starts at level 1 (the singletons); each [`advance`](Self::advance)
/// produces the next level's connected sets, sorted ascending by bitmap.
#[derive(Clone, Debug)]
pub struct FrontierEnumerator<'g> {
    graph: &'g JoinGraph,
    current: Vec<RelSet>,
    next: Vec<RelSet>,
    seen: SeenTable,
    level: usize,
    expansions: u64,
}

impl<'g> FrontierEnumerator<'g> {
    /// Creates the enumerator positioned at level 1 (all singletons).
    pub fn new(graph: &'g JoinGraph) -> Self {
        let n = graph.num_vertices();
        FrontierEnumerator {
            graph,
            current: (0..n).map(RelSet::singleton).collect(),
            next: Vec::new(),
            seen: SeenTable::with_capacity(n),
            level: 1,
            expansions: 0,
        }
    }

    /// The subset size of the current level.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The current level's connected sets, ascending by bitmap.
    #[inline]
    pub fn current(&self) -> &[RelSet] {
        &self.current
    }

    /// Total candidate expansions attempted so far (duplicate hits
    /// included) — the frontier analogue of the `unranked` counter.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Advances to the next level, returning its connected sets (ascending
    /// by bitmap). Returns an empty slice once the frontier is exhausted
    /// (level `n` reached, or no larger connected set exists).
    pub fn advance(&mut self) -> &[RelSet] {
        self.try_advance(|| Ok::<(), std::convert::Infallible>(()))
            .expect("infallible poll")
    }

    /// Like [`advance`](Self::advance), but invokes `poll` every 4096 source
    /// sets so long levels can honour deadlines (the DP backends pass their
    /// `check_deadline`). On `Err` the expansion aborts mid-level and the
    /// enumerator is left in an unspecified state — callers are expected to
    /// abandon the whole run.
    pub fn try_advance<E>(
        &mut self,
        mut poll: impl FnMut() -> Result<(), E>,
    ) -> Result<&[RelSet], E> {
        // Guess ~same cardinality as the current level for the seen-table.
        self.seen.clear_for(self.current.len());
        self.next.clear();
        for (i, &s) in self.current.iter().enumerate() {
            if i % 4096 == 0 {
                poll()?;
            }
            for v in self.graph.neighbors(s).iter() {
                self.expansions += 1;
                let t = s.with(v);
                if self.seen.insert(t.bits()) {
                    self.next.push(t);
                }
            }
        }
        self.next.sort_unstable();
        std::mem::swap(&mut self.current, &mut self.next);
        self.level += 1;
        Ok(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinatorics::KSubsets;

    /// The Figure 5 nine-relation cyclic graph (same shape as
    /// `graph::tests::figure5_graph`).
    fn figure5_graph() -> JoinGraph {
        let mut g = JoinGraph::new(9);
        for &(u, v) in &[
            (1, 2),
            (2, 4),
            (4, 3),
            (3, 1),
            (4, 5),
            (5, 9),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 6),
        ] {
            g.add_edge(u - 1, v - 1, 0.1);
        }
        g
    }

    fn chain_graph(n: usize) -> JoinGraph {
        let mut g = JoinGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i, 0.5);
        }
        g
    }

    fn star_graph(n: usize) -> JoinGraph {
        let mut g = JoinGraph::new(n);
        for i in 1..n {
            g.add_edge(0, i, 0.5);
        }
        g
    }

    fn filtered_level(g: &JoinGraph, i: usize) -> Vec<RelSet> {
        KSubsets::new(g.num_vertices(), i)
            .filter(|s| g.is_connected(*s))
            .collect()
    }

    #[test]
    fn seen_table_insert_contains() {
        let mut t = SeenTable::with_capacity(2);
        assert!(t.is_empty());
        for k in 1..=200u64 {
            assert!(t.insert(k), "{k} fresh");
            assert!(!t.insert(k), "{k} dup");
            assert!(t.contains(k));
        }
        assert_eq!(t.len(), 200);
        assert!(!t.contains(9999));
        t.clear_for(4);
        assert!(t.is_empty());
        assert!(!t.contains(5));
        assert!(t.insert(5));
    }

    #[test]
    fn frontier_matches_filter_on_named_shapes() {
        for g in [figure5_graph(), chain_graph(9), star_graph(9)] {
            let n = g.num_vertices();
            let mut fe = FrontierEnumerator::new(&g);
            assert_eq!(fe.level(), 1);
            assert_eq!(fe.current().len(), n);
            for i in 2..=n {
                let got: Vec<RelSet> = fe.advance().to_vec();
                assert_eq!(fe.level(), i);
                assert_eq!(got, filtered_level(&g, i), "level {i}");
            }
            // Past level n the frontier is exhausted.
            assert!(fe.advance().is_empty());
        }
    }

    #[test]
    fn frontier_levels_sorted_ascending() {
        let g = figure5_graph();
        let mut fe = FrontierEnumerator::new(&g);
        for _ in 2..=9 {
            let lvl = fe.advance().to_vec();
            for w in lvl.windows(2) {
                assert!(w[0].bits() < w[1].bits());
            }
        }
    }

    #[test]
    fn chain_visits_polynomially_many_sets() {
        // A 20-chain has exactly n-i+1 connected i-sets; the frontier
        // enumerator must never touch more than sets × max-degree candidates.
        let g = chain_graph(20);
        let mut fe = FrontierEnumerator::new(&g);
        let mut total_sets = 0u64;
        for i in 2..=20 {
            let lvl = fe.advance();
            assert_eq!(lvl.len(), 20 - i + 1, "level {i}");
            total_sets += lvl.len() as u64;
        }
        assert_eq!(total_sets, 19 * 20 / 2);
        // Degree ≤ 2, so expansions ≤ 2 × (singletons + all connected sets).
        assert!(fe.expansions() <= 2 * (20 + total_sets));
    }

    #[test]
    fn disconnected_graph_frontier_stays_within_components() {
        let mut g = JoinGraph::new(4);
        g.add_edge(0, 1, 0.5);
        g.add_edge(2, 3, 0.5);
        let mut fe = FrontierEnumerator::new(&g);
        let l2 = fe.advance().to_vec();
        assert_eq!(
            l2,
            vec![RelSet::from_indices([0, 1]), RelSet::from_indices([2, 3])]
        );
        assert!(fe.advance().is_empty());
    }

    #[test]
    fn single_vertex_graph() {
        let g = JoinGraph::new(1);
        let mut fe = FrontierEnumerator::new(&g);
        assert_eq!(fe.current().len(), 1);
        assert!(fe.advance().is_empty());
    }
}
