//! Consistent-hash ring with virtual nodes, deterministic from a seed.
//!
//! The sharded planning tier places N independent `PlanService` shards
//! behind this ring: each shard contributes `vnodes` points hashed from
//! `(seed, shard_id, vnode_index)`, a query fingerprint hashes to a point
//! on the same circle, and the owning shard is the first vnode at or after
//! it (wrapping). Two properties carry the tier:
//!
//! * **Balance** — with enough vnodes per shard (the default 128), the
//!   per-shard share of a uniform key population concentrates around 1/N
//!   (relative spread ~ 1/sqrt(vnodes)); asserted by proptest.
//! * **Minimal disruption** — adding a shard inserts only that shard's
//!   vnode points, so only keys whose successor point is one of the new
//!   points move (~1/(N+1) of them), and every moved key moves *to* the
//!   new shard. Removing a shard deletes only its points, so only keys it
//!   owned move. Rehash does not reshuffle the survivors' cache contents.
//!
//! Everything is deterministic from `(seed, shard ids, vnodes)`: the same
//! configuration yields the same ring on every node and every run, which
//! is what lets independent processes agree on ownership without
//! coordination (and lets tests replay routing decisions exactly).

use crate::memo::murmur3_fmix64;

/// Default virtual nodes per shard. 128 keeps the max/mean load ratio
/// under ~1.35 for up to 16 shards while the ring (N×128 points) still
/// fits comfortably in cache for binary search.
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring over a set of shard ids.
///
/// Construction is deterministic from the seed and the shard set; shard
/// ids are arbitrary `u32`s (they survive add/remove, so "shard 3" keeps
/// its identity — and its cache — when shard 5 leaves the ring).
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point_hash, shard_id)`, sorted by point hash. Ties are broken by
    /// shard id so construction order never matters.
    points: Vec<(u64, u32)>,
    shards: Vec<u32>,
    seed: u64,
    vnodes: usize,
}

/// Hash one vnode point. Mixing the three coordinates through fmix64
/// sequentially (rather than XORing them flat) keeps shard 2's points
/// uncorrelated with shard 1's even at adjacent seeds.
fn point_hash(seed: u64, shard: u32, vnode: u32) -> u64 {
    let a = murmur3_fmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let b = murmur3_fmix64(a ^ u64::from(shard).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    murmur3_fmix64(b ^ u64::from(vnode).wrapping_mul(0x94d0_49bb_1331_11eb))
}

/// Position of a 128-bit key (a query fingerprint) on the ring's circle.
fn key_hash(seed: u64, key: u128) -> u64 {
    let hi = (key >> 64) as u64;
    let lo = key as u64;
    murmur3_fmix64(murmur3_fmix64(lo ^ seed) ^ hi)
}

impl HashRing {
    /// Builds a ring over `shard_ids` with `vnodes` points per shard.
    ///
    /// Duplicate shard ids are collapsed. Panics if the shard set is empty
    /// or `vnodes` is zero — an unroutable ring is a configuration bug,
    /// not a runtime condition.
    pub fn new(seed: u64, vnodes: usize, shard_ids: &[u32]) -> HashRing {
        assert!(!shard_ids.is_empty(), "HashRing needs at least one shard");
        assert!(vnodes > 0, "HashRing needs at least one vnode per shard");
        let mut shards: Vec<u32> = shard_ids.to_vec();
        shards.sort_unstable();
        shards.dedup();
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for &shard in &shards {
            for vnode in 0..vnodes as u32 {
                points.push((point_hash(seed, shard, vnode), shard));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards,
            seed,
            vnodes,
        }
    }

    /// The live shard ids, ascending.
    pub fn shard_ids(&self) -> &[u32] {
        &self.shards
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the ring has no shards (never, by construction — kept for
    /// the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Index of the first ring point at or after `key`'s position,
    /// wrapping past the top of the circle.
    fn successor(&self, key: u128) -> usize {
        let h = key_hash(self.seed, key);
        match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// The shard that owns `key`: the first vnode at or after the key's
    /// position on the circle.
    pub fn shard_of(&self, key: u128) -> u32 {
        self.points[self.successor(key)].1
    }

    /// The first `replicas` *distinct* shards walking the circle from
    /// `key`'s position — the replica set for a hot key. The primary owner
    /// is always element 0; `replicas` is clamped to the shard count.
    pub fn shards_of(&self, key: u128, replicas: usize) -> Vec<u32> {
        let want = replicas.clamp(1, self.shards.len());
        let mut out = Vec::with_capacity(want);
        let start = self.successor(key);
        for step in 0..self.points.len() {
            let shard = self.points[(start + step) % self.points.len()].1;
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// A new ring with `shard` added (no-op if already present). Only keys
    /// whose successor point lands on one of the new shard's vnodes move.
    pub fn with_shard(&self, shard: u32) -> HashRing {
        let mut ids = self.shards.clone();
        ids.push(shard);
        HashRing::new(self.seed, self.vnodes, &ids)
    }

    /// A new ring with `shard` removed. Panics if it is the last shard.
    /// Keys the removed shard owned redistribute to their next-distinct
    /// successors; every other key keeps its owner.
    pub fn without_shard(&self, shard: u32) -> HashRing {
        let ids: Vec<u32> = self
            .shards
            .iter()
            .copied()
            .filter(|&s| s != shard)
            .collect();
        HashRing::new(self.seed, self.vnodes, &ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = u128> {
        // splitmix-style counter keys: uniform enough for load statistics.
        (0..n).map(|i| {
            let a = murmur3_fmix64(i.wrapping_mul(0x2545_f491_4f6c_dd1d));
            let b = murmur3_fmix64(a ^ 0xdead_beef);
            (u128::from(a) << 64) | u128::from(b)
        })
    }

    #[test]
    fn deterministic_from_seed() {
        let a = HashRing::new(7, 64, &[0, 1, 2, 3]);
        let b = HashRing::new(7, 64, &[3, 2, 1, 0, 2]);
        for k in keys(1000) {
            assert_eq!(a.shard_of(k), b.shard_of(k));
        }
        let c = HashRing::new(8, 64, &[0, 1, 2, 3]);
        assert!(keys(1000).any(|k| a.shard_of(k) != c.shard_of(k)));
    }

    #[test]
    fn replica_sets_are_distinct_and_led_by_owner() {
        let ring = HashRing::new(42, DEFAULT_VNODES, &[0, 1, 2, 3, 4, 5, 6, 7]);
        for k in keys(500) {
            let set = ring.shards_of(k, 3);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], ring.shard_of(k));
            let mut dedup = set.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replica set has duplicates: {set:?}");
        }
        // Clamped when asking for more replicas than shards exist.
        let tiny = HashRing::new(42, 16, &[0, 1]);
        assert_eq!(tiny.shards_of(1234, 8).len(), 2);
    }

    #[test]
    fn add_shard_moves_only_to_new_shard() {
        let old = HashRing::new(11, DEFAULT_VNODES, &[0, 1, 2, 3]);
        let new = old.with_shard(4);
        let mut moved = 0u64;
        let total = 20_000u64;
        for k in keys(total) {
            let before = old.shard_of(k);
            let after = new.shard_of(k);
            if before != after {
                moved += 1;
                assert_eq!(after, 4, "a moved key must move to the added shard");
            }
        }
        // Expect ~1/5 of keys to move; allow generous slack for vnode noise.
        let frac = moved as f64 / total as f64;
        assert!(
            frac > 0.10 && frac < 0.32,
            "moved fraction {frac:.3} outside ~1/5 band"
        );
    }
}
