//! Query representations consumed by the optimizers.
//!
//! Two layers, matching the paper's two regimes:
//!
//! * [`QueryInfo`] — at most 64 relations, bitmap-based, consumed by the exact
//!   DP algorithms (`QI` in Algorithms 1–3 and 5).
//! * [`LargeQuery`] — arbitrary relation count, adjacency-list based, consumed
//!   by the heuristics of §4 (IDP2, UnionDP, GOO, …) which scale to 1000+
//!   relations and call the exact DP only on *projected* sub-problems.

use crate::bitset::RelSet;
use crate::graph::JoinGraph;

/// Per-relation information the optimizers need: the estimated output
/// cardinality of scanning the relation and the cost of doing so.
///
/// For a base table these come from the catalog (`mpdp-cost`); for a
/// *composite* relation (a temporary table standing for an already-optimized
/// subtree, as used by IDP2 and UnionDP) they are the subtree's estimated
/// rows and plan cost.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RelInfo {
    /// Estimated number of output rows.
    pub rows: f64,
    /// Cost of producing those rows (scan cost or subplan cost).
    pub cost: f64,
}

impl RelInfo {
    /// Convenience constructor.
    pub fn new(rows: f64, cost: f64) -> Self {
        RelInfo { rows, cost }
    }
}

/// A join-order optimization problem over at most 64 relations.
#[derive(Clone, Debug)]
pub struct QueryInfo {
    /// The join graph; vertex `i` corresponds to `rels[i]`.
    pub graph: JoinGraph,
    /// Scan info per relation.
    pub rels: Vec<RelInfo>,
}

impl QueryInfo {
    /// Creates a query; panics if `rels` and the graph disagree on the number
    /// of relations.
    pub fn new(graph: JoinGraph, rels: Vec<RelInfo>) -> Self {
        assert_eq!(
            graph.num_vertices(),
            rels.len(),
            "graph/relation count mismatch"
        );
        QueryInfo { graph, rels }
    }

    /// Number of relations ("query size" in the paper's pseudo-code).
    #[inline]
    pub fn query_size(&self) -> usize {
        self.rels.len()
    }

    /// Converts to the adjacency-list representation consumed by the
    /// heuristic optimizers. Always succeeds (bitmap queries are ≤ 64
    /// relations); the inverse of [`LargeQuery::to_query_info`].
    pub fn to_large(&self) -> LargeQuery {
        let mut q = LargeQuery::new(self.rels.clone());
        for e in self.graph.edges() {
            q.add_edge(e.u as usize, e.v as usize, e.sel);
        }
        q
    }

    /// Estimated cardinality of the join of all relations in `set`:
    /// ∏ rows × ∏ selectivities of the edges induced by `set`.
    ///
    /// Split-invariant by construction, so every DP decomposition agrees.
    pub fn cardinality(&self, set: RelSet) -> f64 {
        let mut rows = 1.0;
        for v in set.iter() {
            rows *= self.rels[v].rows;
        }
        for e in self.graph.induced_edges(set) {
            rows *= e.sel;
        }
        rows
    }
}

/// An edge of a [`LargeQuery`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LargeEdge {
    /// One endpoint (relation index).
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// Join-predicate selectivity in `(0, 1]`.
    pub sel: f64,
}

/// A join-order optimization problem of arbitrary size (heuristic regime).
#[derive(Clone, Debug, Default)]
pub struct LargeQuery {
    /// Scan info per relation.
    pub rels: Vec<RelInfo>,
    /// Undirected join edges (no duplicates; `u < v`).
    pub edges: Vec<LargeEdge>,
    /// Per-vertex incident `(neighbor, selectivity)` lists.
    pub adj: Vec<Vec<(u32, f64)>>,
}

impl LargeQuery {
    /// Creates a query with `n` relations and no edges.
    pub fn new(rels: Vec<RelInfo>) -> Self {
        let n = rels.len();
        LargeQuery {
            rels,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of relations.
    #[inline]
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Adds an undirected edge, merging duplicates multiplicatively.
    pub fn add_edge(&mut self, u: usize, v: usize, sel: f64) {
        assert!(u < self.num_rels() && v < self.num_rels());
        assert_ne!(u, v);
        assert!(
            sel.is_finite() && (0.0..=1.0).contains(&sel),
            "selectivity {sel}"
        );
        // Clamp away from zero: products of hundreds of tiny selectivities
        // (contracted clique partitions) otherwise underflow to 0, which
        // would zero out all downstream cardinalities.
        let sel = sel.max(1e-300);
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(e) = self
            .edges
            .iter_mut()
            .find(|e| e.u == a as u32 && e.v == b as u32)
        {
            e.sel = (e.sel * sel).max(1e-300);
            for &(x, y) in &[(a, b), (b, a)] {
                for entry in self.adj[x].iter_mut() {
                    if entry.0 == y as u32 {
                        entry.1 = (entry.1 * sel).max(1e-300);
                    }
                }
            }
            return;
        }
        self.edges.push(LargeEdge {
            u: a as u32,
            v: b as u32,
            sel,
        });
        self.adj[a].push((b as u32, sel));
        self.adj[b].push((a as u32, sel));
    }

    /// `true` if the whole query graph is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_rels();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adj[v] {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w as usize);
                }
            }
        }
        count == n
    }

    /// Converts to the bitmap representation. Fails (returns `None`) when the
    /// query has more than 64 relations.
    pub fn to_query_info(&self) -> Option<QueryInfo> {
        if self.num_rels() > 64 {
            return None;
        }
        let mut g = JoinGraph::new(self.num_rels());
        for e in &self.edges {
            g.add_edge(e.u as usize, e.v as usize, e.sel);
        }
        Some(QueryInfo::new(g, self.rels.clone()))
    }

    /// Returns the same query with relation `i` renamed to `new_of_old[i]`
    /// (`new_of_old` must be a permutation of `0..num_rels()`).
    ///
    /// Statistics and selectivities are untouched, so the result is
    /// isomorphic to `self` — the identity the serving layer's fingerprint
    /// cache is built on (see `crate::fingerprint`). Also how the Zipf
    /// replay stream disguises repeated query shapes.
    pub fn relabel(&self, new_of_old: &[usize]) -> LargeQuery {
        let n = self.num_rels();
        assert_eq!(new_of_old.len(), n, "permutation length mismatch");
        let mut rels = vec![RelInfo::new(0.0, 0.0); n];
        let mut seen = vec![false; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(new < n && !seen[new], "not a permutation");
            seen[new] = true;
            rels[new] = self.rels[old];
        }
        let mut q = LargeQuery::new(rels);
        for e in &self.edges {
            q.add_edge(new_of_old[e.u as usize], new_of_old[e.v as usize], e.sel);
        }
        q
    }

    /// Projects the sub-problem induced by `vertices` (given as original
    /// relation indices, at most 64 of them) onto a fresh [`QueryInfo`].
    ///
    /// Returns the projected query and the mapping from projected index to
    /// original index. Edges between projected vertices keep their
    /// selectivities; edges to outside vertices are dropped (they become cut
    /// edges at the caller's level).
    ///
    /// This is how the heuristics invoke MPDP "with the correct subset of the
    /// query information" (§4.1.1).
    pub fn project(&self, vertices: &[usize]) -> (QueryInfo, Vec<usize>) {
        assert!(vertices.len() <= 64, "projection wider than 64 relations");
        let mut index_of = vec![usize::MAX; self.num_rels()];
        for (new, &old) in vertices.iter().enumerate() {
            index_of[old] = new;
        }
        let mut g = JoinGraph::new(vertices.len());
        for e in &self.edges {
            let (iu, iv) = (index_of[e.u as usize], index_of[e.v as usize]);
            if iu != usize::MAX && iv != usize::MAX {
                g.add_edge(iu, iv, e.sel);
            }
        }
        let rels = vertices.iter().map(|&v| self.rels[v]).collect();
        (QueryInfo::new(g, rels), vertices.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain4() -> LargeQuery {
        let mut q = LargeQuery::new(vec![
            RelInfo::new(100.0, 10.0),
            RelInfo::new(200.0, 20.0),
            RelInfo::new(300.0, 30.0),
            RelInfo::new(400.0, 40.0),
        ]);
        q.add_edge(0, 1, 0.01);
        q.add_edge(1, 2, 0.005);
        q.add_edge(2, 3, 0.002);
        q
    }

    #[test]
    fn cardinality_is_split_invariant() {
        let q = chain4().to_query_info().unwrap();
        let full = q.graph.all_vertices();
        let total = q.cardinality(full);
        // product of rows * product of sels
        let expect = 100.0 * 200.0 * 300.0 * 400.0 * 0.01 * 0.005 * 0.002;
        assert!((total - expect).abs() / expect < 1e-12);
        // Recursive consistency: card(S) = card(A)*card(B)*sel(A,B)
        let a = RelSet::from_indices([0, 1]);
        let b = RelSet::from_indices([2, 3]);
        let lhs = q.cardinality(full);
        let rhs = q.cardinality(a) * q.cardinality(b) * q.graph.selectivity_between(a, b);
        assert!((lhs - rhs).abs() / lhs < 1e-12);
    }

    #[test]
    fn large_query_connectivity() {
        let q = chain4();
        assert!(q.is_connected());
        let mut d = LargeQuery::new(vec![RelInfo::new(1.0, 1.0); 3]);
        d.add_edge(0, 1, 0.5);
        assert!(!d.is_connected());
        assert!(LargeQuery::new(vec![]).is_connected());
    }

    #[test]
    fn projection_keeps_internal_edges_only() {
        let q = chain4();
        let (sub, mapping) = q.project(&[1, 2]);
        assert_eq!(mapping, vec![1, 2]);
        assert_eq!(sub.query_size(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
        let e = sub.graph.edges()[0];
        assert!((e.sel - 0.005).abs() < 1e-15);
        assert_eq!(sub.rels[0].rows, 200.0);
        assert_eq!(sub.rels[1].rows, 300.0);
    }

    #[test]
    fn projection_of_disconnected_subset() {
        let q = chain4();
        let (sub, _) = q.project(&[0, 3]);
        assert_eq!(sub.graph.num_edges(), 0);
        assert!(!sub.graph.is_connected(RelSet::from_indices([0, 1])));
    }

    #[test]
    fn to_large_roundtrip() {
        let q = chain4();
        let back = q.to_query_info().unwrap().to_large();
        assert_eq!(back.rels, q.rels);
        assert_eq!(back.edges.len(), q.edges.len());
        for (a, b) in back.edges.iter().zip(&q.edges) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.sel - b.sel).abs() < 1e-15);
        }
    }

    #[test]
    fn to_query_info_roundtrip() {
        let q = chain4();
        let qi = q.to_query_info().unwrap();
        assert_eq!(qi.query_size(), 4);
        assert_eq!(qi.graph.num_edges(), 3);
        assert!(qi.graph.is_connected(qi.graph.all_vertices()));
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut q = LargeQuery::new(vec![RelInfo::new(1.0, 1.0); 2]);
        q.add_edge(0, 1, 0.5);
        q.add_edge(1, 0, 0.1);
        assert_eq!(q.edges.len(), 1);
        assert!((q.edges[0].sel - 0.05).abs() < 1e-15);
        assert!((q.adj[0][0].1 - 0.05).abs() < 1e-15);
    }
}
