//! Lock-free shared memo: the CPU analogue of the paper's global hash table.
//!
//! The paper's central device (§5) is a *device-global* open-addressing hash
//! table that every GPU lane updates in place with `atomicMin`: there are no
//! per-worker plan buffers and no reduction pass — the table itself is the
//! reduction. [`AtomicMemo`] is that structure for shared-memory CPUs (and
//! for the simulated-GPU drivers, whose "device memory" it now is): an
//! open-addressing table of `AtomicU64` slot pairs, claimed and updated with
//! CAS loops, that many workers hammer concurrently while each key still
//! converges to the exact `(cost, left)` minimum.
//!
//! ## Slot layout and the packed-CAS update
//!
//! Each slot is a pair of `AtomicU64`s:
//!
//! * **key** — the relation-set bitmap, claimed once via
//!   `CAS(0 → bits)` (linear probing on collision, Murmur3 start index,
//!   same probe sequence as [`crate::memo::MemoTable`]);
//! * **val** — a handle (index + 1) into an append-only candidate arena
//!   whose records hold `(cost, left, rows)` and are immutable once
//!   published.
//!
//! The winner per key must be the minimum under the 128-bit lexicographic
//! key `(cost-as-ordered-bits, left bitmap)` — see
//! [`crate::memo::candidate_key`] — and 128 bits cannot be
//! CAS'd at once on stable Rust. Splitting the pair across two words is
//! *not* an option: a writer that lowers the cost word and a tying writer
//! that min-updates the left word can interleave into a `(cost, left)` pair
//! that no candidate ever proposed (a torn winner), which would break the
//! bit-identity guarantee the equivalence tests enforce. The arena
//! indirection solves this the way lock-free maps do: a candidate is
//! published as one immutable record, and a single 64-bit CAS on the handle
//! word atomically swings the slot from one *consistent* `(cost, left,
//! rows)` triple to another. `f64` costs stay exact — no truncation into a
//! packed word — so results are bit-identical to the sequential
//! [`crate::memo::MemoTable`].
//!
//! ## Memory ordering
//!
//! * Key claim is `AcqRel`: a claimed key happens-before any reader that
//!   observes it; losers re-read with `Acquire`.
//! * Arena records are written *before* the handle CAS publishes them; the
//!   CAS is `AcqRel` and handle loads are `Acquire`, so a reader that sees
//!   handle `h` also sees the fully written record `h-1` (release/acquire
//!   pairing on the same atomic). Records are never mutated after
//!   publication, so no tearing is possible.
//! * Diagnostics (probe and CAS-retry counters) are `Relaxed` — statistics,
//!   not synchronization.
//!
//! The level barrier of every parallel backend provides the cross-level
//! ordering: within a level, workers only *read* strictly smaller sets
//! (previous levels, already quiescent) and only *write* current-level sets,
//! so the CAS loop is the only point of contention.
//!
//! ## What is lock-free here
//!
//! Claim, update and lookup are all CAS/fetch-add loops with no mutex and no
//! waiting on other threads' progress: a failed CAS means another writer
//! *succeeded*, so the system always advances. The one exception is arena
//! segment creation (amortized `O(log n)` events per run): competing
//! allocators race a CAS on the segment pointer and the losers free their
//! allocation — still lock-free, just briefly wasteful. The table does not
//! grow concurrently; backends size each DP level up front with
//! [`AtomicMemo::reserve`] between barriers (exactly where the paper's host
//! loop re-launches kernels), and the claim loop panics rather than spins
//! forever if a level was under-reserved.

use crate::bitset::RelSet;
use crate::memo::{
    candidate_key, murmur3_fmix64, ordered_cost_bits, MemoEntry, MemoHealth, MemoStore,
};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// One immutable published candidate.
#[derive(Copy, Clone, Debug, Default)]
struct Candidate {
    cost: f64,
    left: u64,
    rows: f64,
}

/// Interior-mutable candidate cell; sound because each arena index is handed
/// to exactly one writer (a unique `fetch_add` ticket) and published records
/// are never written again.
struct CandidateCell(UnsafeCell<Candidate>);

// SAFETY: cross-thread access is mediated by the publish protocol above —
// a cell is written by its unique ticket holder and only read after the
// handle CAS (release) is observed (acquire).
unsafe impl Sync for CandidateCell {}

/// Number of doubling segments; segment `k` holds `base << k` cells, so 48
/// segments cover any conceivable run.
const SEGMENTS: usize = 48;

/// Append-only segmented arena of published candidates. Indices are stable
/// forever (segments never move), which is what makes the handle-word CAS
/// ABA-free: every published handle refers to a distinct, immutable record.
struct Arena {
    segments: [AtomicPtr<CandidateCell>; SEGMENTS],
    cursor: AtomicUsize,
    /// Capacity of segment 0 (power of two).
    base: usize,
}

impl Arena {
    fn new(base: usize) -> Arena {
        let base = base.max(16).next_power_of_two();
        Arena {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            cursor: AtomicUsize::new(0),
            base,
        }
    }

    /// Segment index and in-segment offset of arena index `id`.
    #[inline]
    fn locate(&self, id: usize) -> (usize, usize) {
        // Segment k covers ids [base*(2^k - 1), base*(2^{k+1} - 1)).
        let t = id / self.base + 1;
        let k = (usize::BITS - 1 - t.leading_zeros()) as usize;
        (k, id - self.base * ((1 << k) - 1))
    }

    #[inline]
    fn segment_len(&self, k: usize) -> usize {
        self.base << k
    }

    /// Returns the segment pointer for `k`, allocating it if absent.
    fn segment(&self, k: usize) -> *const CandidateCell {
        let ptr = self.segments[k].load(Ordering::Acquire);
        if !ptr.is_null() {
            return ptr;
        }
        // Race to install: losers free their allocation (lock-free helping).
        let len = self.segment_len(k);
        let mut fresh: Vec<CandidateCell> = Vec::with_capacity(len);
        fresh.resize_with(len, || CandidateCell(UnsafeCell::new(Candidate::default())));
        let raw = Box::into_raw(fresh.into_boxed_slice()) as *mut CandidateCell;
        match self.segments[k].compare_exchange(
            std::ptr::null_mut(),
            raw,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => raw,
            Err(winner) => {
                // SAFETY: `raw` came from `Box::into_raw` above and lost the
                // race, so no other thread has seen it.
                drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(raw, len)) });
                winner
            }
        }
    }

    /// Publishes a candidate and returns its arena index. The record's
    /// contents become visible to other threads only through a subsequent
    /// release operation on the slot's handle word.
    fn publish(&self, c: Candidate) -> usize {
        let id = self.cursor.fetch_add(1, Ordering::Relaxed);
        let (k, off) = self.locate(id);
        assert!(k < SEGMENTS, "AtomicMemo arena exhausted");
        let seg = self.segment(k);
        // SAFETY: `id` is a unique ticket, so this cell has exactly one
        // writer; `off < segment_len(k)` by `locate`'s arithmetic.
        unsafe { *(*seg.add(off)).0.get() = c };
        id
    }

    /// Reads a published record. Caller must have observed the publishing
    /// release (an `Acquire` load of a handle naming `id`).
    #[inline]
    fn read(&self, id: usize) -> Candidate {
        let (k, off) = self.locate(id);
        let seg = self.segments[k].load(Ordering::Acquire);
        debug_assert!(!seg.is_null());
        // SAFETY: published records are immutable; visibility follows from
        // the caller's acquire on the handle word.
        unsafe { *(*seg.add(off)).0.get() }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for (k, seg) in self.segments.iter_mut().enumerate() {
            let ptr = *seg.get_mut();
            if !ptr.is_null() {
                let len = self.base << k;
                // SAFETY: pointer was produced by Box::into_raw of a boxed
                // slice of exactly `len` cells and is dropped exactly once.
                drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) });
            }
        }
    }
}

/// The lock-free shared memo table (see the module docs for the design).
///
/// All hot-path operations take `&self` so scoped worker threads can share
/// one `&AtomicMemo`; the [`MemoStore`] trait methods delegate to them.
/// Capacity is managed between level barriers via [`AtomicMemo::reserve`]
/// (`&mut self` — the table never grows concurrently).
pub struct AtomicMemo {
    keys: Box<[AtomicU64]>,
    vals: Box<[AtomicU64]>,
    mask: usize,
    len: AtomicUsize,
    probes: AtomicU64,
    cas_retries: AtomicU64,
    arena: Arena,
}

impl AtomicMemo {
    /// Creates a table sized for roughly `expected` entries (same ≤70% load
    /// policy as [`crate::memo::MemoTable`]).
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        AtomicMemo {
            keys: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            vals: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            len: AtomicUsize::new(0),
            probes: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            arena: Arena::new(expected.max(8) * 2),
        }
    }

    /// Number of claimed entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// `true` if no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative insert-path probe steps (diagnostics).
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Cumulative CAS retries across claim and update loops (diagnostics;
    /// 0 in any single-threaded run).
    pub fn cas_retry_count(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Point-in-time health metrics.
    pub fn health(&self) -> MemoHealth {
        MemoHealth {
            entries: self.len(),
            slots: self.keys.len(),
            probes: self.probe_count(),
            cas_retries: self.cas_retry_count(),
        }
    }

    /// Looks up the best entry for `set`. Safe concurrently with writers,
    /// but the backends only read keys whose level is already quiescent
    /// (previous DP levels); a key claimed but not yet published reads as
    /// absent.
    pub fn get(&self, set: RelSet) -> Option<MemoEntry> {
        if set.is_empty() {
            return None;
        }
        let bits = set.bits();
        let mut idx = (murmur3_fmix64(bits) as usize) & self.mask;
        loop {
            let k = self.keys[idx].load(Ordering::Acquire);
            if k == 0 {
                return None;
            }
            if k == bits {
                let handle = self.vals[idx].load(Ordering::Acquire);
                if handle == 0 {
                    return None;
                }
                let c = self.arena.read(handle as usize - 1);
                return Some(MemoEntry {
                    set,
                    left: RelSet(c.left),
                    cost: c.cost,
                    rows: c.rows,
                });
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Inserts a leaf entry for a base relation (init-time; single writer
    /// per relation, but safe concurrently regardless).
    pub fn insert_leaf(&self, rel: usize, rows: f64, cost: f64) {
        self.insert_if_better(RelSet::singleton(rel), RelSet::empty(), cost, rows);
    }

    /// The paper's `atomicMin` on the global table: records the candidate
    /// for `set` iff its `(cost, left)` [`candidate_key`] beats the
    /// incumbent's, with a CAS loop resolving races. Any number of threads
    /// may call this for the same key; the slot converges to the exact
    /// minimum regardless of interleaving. Returns `true` if the candidate
    /// became (transiently, at its linearization point) the best.
    pub fn insert_if_better(&self, set: RelSet, left: RelSet, cost: f64, rows: f64) -> bool {
        debug_assert!(!set.is_empty() && left.is_subset(set));
        let slot = self.claim(set.bits());
        let my_key = candidate_key(cost, left);
        let val = &self.vals[slot];
        let mut published: Option<u64> = None;
        let mut cur = val.load(Ordering::Acquire);
        loop {
            if cur != 0 {
                let inc = self.arena.read(cur as usize - 1);
                if (ordered_cost_bits(inc.cost), inc.left) <= my_key {
                    return false;
                }
            }
            let handle = *published.get_or_insert_with(|| {
                self.arena.publish(Candidate {
                    cost,
                    left: left.bits(),
                    rows,
                }) as u64
                    + 1
            });
            match val.compare_exchange_weak(cur, handle, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(now) => {
                    self.cas_retries.fetch_add(1, Ordering::Relaxed);
                    cur = now;
                }
            }
        }
    }

    /// Finds the slot index for `bits`, claiming an empty slot if the key is
    /// new. Panics (rather than spinning forever) if the table is full —
    /// backends reserve each level's capacity up front.
    fn claim(&self, bits: u64) -> usize {
        debug_assert_ne!(bits, 0);
        let mut idx = (murmur3_fmix64(bits) as usize) & self.mask;
        let mut steps = 0usize;
        loop {
            self.probes.fetch_add(1, Ordering::Relaxed);
            let k = self.keys[idx].load(Ordering::Acquire);
            if k == bits {
                return idx;
            }
            if k == 0 {
                match self.keys[idx].compare_exchange(0, bits, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return idx;
                    }
                    Err(winner) => {
                        self.cas_retries.fetch_add(1, Ordering::Relaxed);
                        if winner == bits {
                            return idx;
                        }
                        // Another key took this slot; keep probing.
                    }
                }
            }
            idx = (idx + 1) & self.mask;
            steps += 1;
            assert!(
                steps <= self.mask,
                "AtomicMemo full: reserve() must size each level before the parallel phase"
            );
        }
    }

    /// Ensures capacity for `additional` more entries (≤70% load), rehashing
    /// with exclusive access — called between level barriers only.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len() + additional;
        let min_slots = (needed + 1) * 10 / 7 + 1;
        if min_slots <= self.keys.len() {
            return;
        }
        let cap = min_slots.next_power_of_two();
        let old_keys = std::mem::replace(
            &mut self.keys,
            (0..cap).map(|_| AtomicU64::new(0)).collect(),
        );
        let old_vals = std::mem::replace(
            &mut self.vals,
            (0..cap).map(|_| AtomicU64::new(0)).collect(),
        );
        self.mask = cap - 1;
        for (k, v) in old_keys.iter().zip(old_vals.iter()) {
            let bits = k.load(Ordering::Relaxed);
            if bits == 0 {
                continue;
            }
            let mut idx = (murmur3_fmix64(bits) as usize) & self.mask;
            while self.keys[idx].load(Ordering::Relaxed) != 0 {
                idx = (idx + 1) & self.mask;
            }
            // Handles carry over untouched: arena indices are stable.
            self.keys[idx].store(bits, Ordering::Relaxed);
            self.vals[idx].store(v.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Iterates over all published entries (arbitrary order). Intended for
    /// quiescent states (after the run, or between barriers).
    pub fn iter(&self) -> impl Iterator<Item = MemoEntry> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter_map(move |(k, v)| {
                let bits = k.load(Ordering::Acquire);
                let handle = v.load(Ordering::Acquire);
                if bits == 0 || handle == 0 {
                    return None;
                }
                let c = self.arena.read(handle as usize - 1);
                Some(MemoEntry {
                    set: RelSet(bits),
                    left: RelSet(c.left),
                    cost: c.cost,
                    rows: c.rows,
                })
            })
    }
}

impl std::fmt::Debug for AtomicMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicMemo")
            .field("entries", &self.len())
            .field("slots", &self.keys.len())
            .field("probes", &self.probe_count())
            .field("cas_retries", &self.cas_retry_count())
            .finish()
    }
}

impl MemoStore for AtomicMemo {
    fn with_capacity(expected: usize) -> Self {
        AtomicMemo::with_capacity(expected)
    }

    fn len(&self) -> usize {
        AtomicMemo::len(self)
    }

    fn get(&self, set: RelSet) -> Option<MemoEntry> {
        AtomicMemo::get(self, set)
    }

    fn insert_leaf(&mut self, rel: usize, rows: f64, cost: f64) {
        AtomicMemo::insert_leaf(self, rel, rows, cost)
    }

    fn insert_if_better(&mut self, set: RelSet, left: RelSet, cost: f64, rows: f64) -> bool {
        AtomicMemo::insert_if_better(self, set, left, cost, rows)
    }

    fn reserve(&mut self, additional: usize) {
        AtomicMemo::reserve(self, additional)
    }

    fn health(&self) -> MemoHealth {
        AtomicMemo::health(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::MemoTable;

    #[test]
    fn insert_get_roundtrip() {
        let m = AtomicMemo::with_capacity(4);
        m.insert_leaf(3, 100.0, 7.0);
        let e = m.get(RelSet::singleton(3)).unwrap();
        assert!(e.is_leaf());
        assert_eq!(e.rows, 100.0);
        assert_eq!(e.cost, 7.0);
        assert!(m.get(RelSet::singleton(2)).is_none());
        assert!(m.get(RelSet::empty()).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn keeps_minimum_and_breaks_ties_like_memo_table() {
        let a = AtomicMemo::with_capacity(8);
        let mut t = MemoTable::with_capacity(8);
        let s = RelSet::from_indices([0, 1, 2]);
        let candidates = [
            (RelSet::from_indices([1, 2]), 10.0),
            (RelSet::singleton(0), 8.0),
            (RelSet::singleton(1), 8.0), // tie with a larger left
            (RelSet::from_indices([0, 1]), 9.0),
        ];
        for &(left, cost) in &candidates {
            assert_eq!(
                a.insert_if_better(s, left, cost, 1.0),
                t.insert_if_better(s, left, cost, 1.0)
            );
        }
        let (ea, et) = (a.get(s).unwrap(), t.get(s).unwrap());
        assert_eq!(ea.left, et.left);
        assert_eq!(ea.cost.to_bits(), et.cost.to_bits());
        assert_eq!(ea.left, RelSet::singleton(0));
    }

    #[test]
    fn reserve_rehash_preserves_entries() {
        let mut m = AtomicMemo::with_capacity(2);
        for i in 0..100u64 {
            m.insert_if_better(RelSet(i + 1), RelSet(i + 1).lowest_bit(), i as f64, 1.0);
            if i == 10 {
                m.reserve(500);
            }
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            assert_eq!(m.get(RelSet(i + 1)).unwrap().cost, i as f64);
        }
        assert_eq!(m.iter().count(), 100);
    }

    #[test]
    fn arena_indexing_is_dense_and_stable() {
        let arena = Arena::new(16);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let id = arena.publish(Candidate {
                cost: i as f64,
                left: i,
                rows: 0.0,
            });
            assert!(seen.insert(id));
        }
        for id in 0..1000usize {
            assert_eq!(arena.read(id).left, id as u64);
        }
    }

    #[test]
    fn concurrent_hammer_converges_to_exact_minimum() {
        // 8 threads race interleaved insert_if_better calls over a shared
        // key space, including exact-cost ties; the table must converge to
        // the same (cost, left) the sequential table computes.
        const THREADS: usize = 8;
        const KEYS: u64 = 64;
        const PER_THREAD: usize = 2000;
        let mut memo = AtomicMemo::with_capacity(KEYS as usize);
        memo.reserve(KEYS as usize);
        let memo = &memo;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..PER_THREAD {
                        state = murmur3_fmix64(state.wrapping_add(0xa076_1d64_78bd_642f));
                        let key = RelSet(state % KEYS + 1);
                        let left = RelSet((state >> 17) & key.bits()).lowest_bit();
                        // Few distinct costs -> frequent exact ties.
                        let cost = ((state >> 32) % 7) as f64;
                        memo.insert_if_better(
                            key,
                            if left.is_empty() {
                                key.lowest_bit()
                            } else {
                                left
                            },
                            cost,
                            1.0,
                        );
                    }
                });
            }
        });
        // Sequential replay with the same per-thread streams.
        let mut expect = MemoTable::with_capacity(KEYS as usize);
        for t in 0..THREADS {
            let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
            for _ in 0..PER_THREAD {
                state = murmur3_fmix64(state.wrapping_add(0xa076_1d64_78bd_642f));
                let key = RelSet(state % KEYS + 1);
                let left = RelSet((state >> 17) & key.bits()).lowest_bit();
                let cost = ((state >> 32) % 7) as f64;
                expect.insert_if_better(
                    key,
                    if left.is_empty() {
                        key.lowest_bit()
                    } else {
                        left
                    },
                    cost,
                    1.0,
                );
            }
        }
        assert_eq!(memo.len(), expect.len());
        for e in expect.iter() {
            let got = memo.get(e.set).unwrap();
            assert_eq!(got.cost.to_bits(), e.cost.to_bits(), "key {}", e.set);
            assert_eq!(got.left, e.left, "key {}", e.set);
        }
    }

    #[test]
    fn claim_collisions_across_distinct_keys() {
        // Distinct keys racing for the same probe chain must all land.
        let mut memo = AtomicMemo::with_capacity(64);
        memo.reserve(512);
        let memo = &memo;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..128u64 {
                        let key = RelSet(t * 128 + i + 1);
                        memo.insert_if_better(key, key.lowest_bit(), i as f64, 2.0);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 512);
        for k in 1..=512u64 {
            assert!(memo.get(RelSet(k)).is_some(), "key {k}");
        }
    }
}
