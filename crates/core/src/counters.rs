//! Instrumentation counters and per-level profiles.
//!
//! The paper's efficiency argument is stated in terms of two counters
//! (§2.2/§2.3): `EvaluatedCounter`, the number of Join-Pairs an algorithm
//! evaluates, and `CCP-Counter`, the number of those that are valid CCP
//! pairs. Every optimizer in this workspace maintains both, plus per-DP-level
//! statistics that feed the hardware timing model (`mpdp-parallel::hwmodel`)
//! used to predict multi-core and GPU times on this single-core container.

/// Global counters for one optimizer run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Join-Pairs evaluated (`EvaluatedCounter` in Algorithm 1, line 9).
    pub evaluated: u64,
    /// Valid Join-Pairs, i.e. CCP pairs, counting symmetric pairs separately
    /// (`CCP-Counter`, Algorithm 1, line 18).
    pub ccp: u64,
    /// Connected sets enumerated across all levels (`|S_i|` summed).
    pub sets: u64,
    /// Candidate sets unranked before connectivity filtering (vertex-based
    /// algorithms unrank all `C(n, i)` combinations; edge-based ones don't
    /// unrank at all).
    pub unranked: u64,
}

impl Counters {
    /// Ratio `evaluated / ccp` — the paper's headline inefficiency metric
    /// (e.g. "2805 times larger ... at 25 relations" for DPSUB on stars).
    pub fn inefficiency(&self) -> f64 {
        if self.ccp == 0 {
            0.0
        } else {
            self.evaluated as f64 / self.ccp as f64
        }
    }

    /// Adds another counter set (used when merging per-thread results).
    pub fn merge(&mut self, other: &Counters) {
        self.evaluated += other.evaluated;
        self.ccp += other.ccp;
        self.sets += other.sets;
        self.unranked += other.unranked;
    }
}

/// Per-DP-level statistics (one entry per subset size `i`).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Subset size of this level.
    pub size: usize,
    /// Candidate sets unranked for this level (before the connectivity
    /// filter); 0 for edge-based enumeration.
    pub unranked: u64,
    /// Connected sets evaluated at this level.
    pub sets: u64,
    /// Join-Pairs evaluated at this level.
    pub evaluated: u64,
    /// CCP pairs found at this level.
    pub ccp: u64,
    /// Memo-table writes performed at this level.
    pub memo_writes: u64,
    /// Open-addressing probe steps taken by memo inserts at this level.
    pub memo_probes: u64,
    /// CAS retries in the shared atomic memo at this level (0 for
    /// single-threaded stores and single-worker runs).
    pub cas_retries: u64,
}

/// A whole run's per-level profile, consumed by the hardware model.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// One entry per DP level, in increasing subset size. Algorithms without
    /// a level structure (e.g. DPCCP's graph-order enumeration) record a
    /// single pseudo-level.
    pub levels: Vec<LevelStats>,
    /// Final memo health (load factor, probes, CAS retries), filled by the
    /// run's `finish` step.
    pub memo: Option<crate::memo::MemoHealth>,
}

impl Profile {
    /// Aggregates the per-level stats into run totals.
    pub fn totals(&self) -> Counters {
        let mut c = Counters::default();
        for l in &self.levels {
            c.evaluated += l.evaluated;
            c.ccp += l.ccp;
            c.sets += l.sets;
            c.unranked += l.unranked;
        }
        c
    }

    /// Adds a level, merging with an existing entry of the same size if any
    /// (parallel workers report fragments of the same level).
    pub fn record(&mut self, stats: LevelStats) {
        if let Some(l) = self.levels.iter_mut().find(|l| l.size == stats.size) {
            l.unranked += stats.unranked;
            l.sets += stats.sets;
            l.evaluated += stats.evaluated;
            l.ccp += stats.ccp;
            l.memo_writes += stats.memo_writes;
            l.memo_probes += stats.memo_probes;
            l.cas_retries += stats.cas_retries;
        } else {
            self.levels.push(stats);
        }
    }
}

/// Aggregate counters for one plan execution (`mpdp-exec`).
///
/// The execution-side sibling of [`Counters`]: where `evaluated`/`ccp`
/// summarize what an *optimizer* did, these summarize what the chosen plan
/// then *cost* to run — rows through the hash-join build and probe phases,
/// rows emitted, probe morsels processed. `feedback_invalidations` counts
/// cached plans a serving layer evicted because this (or an aggregated)
/// execution observed a root cardinality far from the estimate; the
/// executor itself leaves it 0.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Rows inserted into hash tables across all joins.
    pub build_rows: u64,
    /// Rows streamed through probe sides across all joins.
    pub probe_rows: u64,
    /// Rows emitted by join operators (intermediate + root).
    pub output_rows: u64,
    /// Probe morsels processed.
    pub batches: u64,
    /// Join operators executed.
    pub joins: u64,
    /// Cached plans invalidated by cardinality feedback (serving layer).
    pub feedback_invalidations: u64,
}

impl ExecCounters {
    /// Adds another counter set (e.g. when aggregating a workload's runs).
    pub fn merge(&mut self, other: &ExecCounters) {
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.output_rows += other.output_rows;
        self.batches += other.batches;
        self.joins += other.joins;
        self.feedback_invalidations += other.feedback_invalidations;
    }

    /// Total rows touched by join machinery (built + probed + emitted) —
    /// the executor's coarse "work" measure, used by the bench report to
    /// compare plans of one query independent of wall-clock noise.
    pub fn rows_touched(&self) -> u64 {
        self.build_rows + self.probe_rows + self.output_rows
    }
}

/// Thread-safe hit/miss/eviction counters for a serving-layer cache.
///
/// The same observability idea as [`Counters`] — cheap monotonic counts that
/// summarize a run — lifted from one optimization to a cache serving many.
/// All updates are relaxed atomics: the counts are statistics, not
/// synchronization, and a [`CacheCounters::snapshot`] taken after all
/// requests have drained is exact (asserted by the concurrent hammer test).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    coalesced: std::sync::atomic::AtomicU64,
    insertions: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
    expirations: std::sync::atomic::AtomicU64,
    feedback_checks: std::sync::atomic::AtomicU64,
    feedback_invalidations: std::sync::atomic::AtomicU64,
    degraded: std::sync::atomic::AtomicU64,
    deadline_exceeded: std::sync::atomic::AtomicU64,
}

/// A point-in-time copy of [`CacheCounters`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry). On the
    /// single-flight serving path a miss is counted only for the one
    /// request that actually plans (the flight leader).
    pub misses: u64,
    /// Requests that joined an in-flight planning of the same fingerprint
    /// instead of planning themselves (single-flight joins). Every
    /// single-flight request is exactly one of hit / miss / coalesced.
    pub coalesced: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted by capacity (LRU order).
    pub evictions: u64,
    /// Entries dropped because their TTL had lapsed.
    pub expirations: u64,
    /// Execution reports fed back through the service's `observe` hook.
    pub feedback_checks: u64,
    /// Cached plans evicted because an observed root cardinality deviated
    /// from the estimate beyond the feedback threshold.
    pub feedback_invalidations: u64,
    /// Requests served a heuristic plan because their deadline budget could
    /// not afford the routed exact strategy (or the exact attempt timed out
    /// mid-flight). Disjoint from hits/misses/coalesced: a degraded request
    /// neither planned exactly nor touched the cache.
    pub degraded: u64,
    /// Requests whose exact planning attempt was cut off by the deadline
    /// mid-flight (a subset of the degradations: the ones that started
    /// exact and fell back late, rather than degrading up front).
    pub deadline_exceeded: u64,
}

impl CacheSnapshot {
    /// `hits / (hits + misses)`; 0.0 before any lookup. Coalesced requests
    /// are not counted in either side: they neither probed the cache to a
    /// decision nor planned (see [`CacheSnapshot::request_hit_rate`] for the
    /// per-request view).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// `hits / (hits + misses + coalesced)` — the fraction of *requests*
    /// answered straight from the cache on the single-flight serving path;
    /// 0.0 before any request.
    pub fn request_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity between `earlier` and `self` (counters are monotonic,
    /// so a field-wise difference is a window's worth of traffic). This is
    /// what lets `repro serve` print per-window rates instead of cumulative
    /// totals on a long-lived, pre-warmed service.
    pub fn delta(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            expirations: self.expirations - earlier.expirations,
            feedback_checks: self.feedback_checks - earlier.feedback_checks,
            feedback_invalidations: self.feedback_invalidations - earlier.feedback_invalidations,
            degraded: self.degraded - earlier.degraded,
            deadline_exceeded: self.deadline_exceeded - earlier.deadline_exceeded,
        }
    }

    /// Alias of [`CacheSnapshot::delta`], kept for existing callers.
    pub fn since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        self.delta(earlier)
    }

    /// Adds another snapshot field-wise (the cache-side sibling of
    /// [`ExecCounters::merge`]). Associative and commutative, so folding
    /// any number of per-shard or per-tenant snapshots in any order yields
    /// the same exact cluster-level totals — the property the sharded
    /// planning tier's aggregate metrics rely on.
    pub fn merge(&mut self, other: &CacheSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.feedback_checks += other.feedback_checks;
        self.feedback_invalidations += other.feedback_invalidations;
        self.degraded += other.degraded;
        self.deadline_exceeded += other.deadline_exceeded;
    }
}

impl CacheCounters {
    const ORD: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

    /// Records a cache hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Self::ORD);
    }

    /// Records a cache miss.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Self::ORD);
    }

    /// Records a single-flight join (a request served by an in-flight
    /// planning of the same fingerprint).
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Self::ORD);
    }

    /// Records an insertion.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Self::ORD);
    }

    /// Records a capacity eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Self::ORD);
    }

    /// Records a TTL expiration.
    pub fn record_expiration(&self) {
        self.expirations.fetch_add(1, Self::ORD);
    }

    /// Records a cardinality-feedback check (`observe` call).
    pub fn record_feedback_check(&self) {
        self.feedback_checks.fetch_add(1, Self::ORD);
    }

    /// Records a cardinality-feedback invalidation.
    pub fn record_feedback_invalidation(&self) {
        self.feedback_invalidations.fetch_add(1, Self::ORD);
    }

    /// Records a request served a degraded (heuristic) plan.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Self::ORD);
    }

    /// Records an exact planning attempt cut off by its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Self::ORD);
    }

    /// Copies the current counts.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Self::ORD),
            misses: self.misses.load(Self::ORD),
            coalesced: self.coalesced.load(Self::ORD),
            insertions: self.insertions.load(Self::ORD),
            evictions: self.evictions.load(Self::ORD),
            expirations: self.expirations.load(Self::ORD),
            feedback_checks: self.feedback_checks.load(Self::ORD),
            feedback_invalidations: self.feedback_invalidations.load(Self::ORD),
            degraded: self.degraded.load(Self::ORD),
            deadline_exceeded: self.deadline_exceeded.load(Self::ORD),
        }
    }
}

/// Thread-safe counters for an admission-controlled serving front-end.
///
/// The queue-facing sibling of [`CacheCounters`]: where cache counters
/// account for what happened *inside* the plan cache, these account for what
/// happened to *requests* at the front door — admission, shedding, dispatch
/// and completion. `queue_depth` and `in_flight` are gauges (current values,
/// not monotonic totals); everything else is monotonic, so a
/// [`ServeSnapshot::delta`] over the monotonic fields is a window's traffic.
#[derive(Debug, Default)]
pub struct ServeCounters {
    accepted: std::sync::atomic::AtomicU64,
    shed_queue_full: std::sync::atomic::AtomicU64,
    shed_quota: std::sync::atomic::AtomicU64,
    completed: std::sync::atomic::AtomicU64,
    failed: std::sync::atomic::AtomicU64,
    /// Signed: a dispatcher can pop a request (and record the dispatch)
    /// between the producer's successful queue push and its gauge increment,
    /// transiently driving the gauge below zero. Readers clamp at 0.
    queue_depth: std::sync::atomic::AtomicI64,
    queue_depth_peak: std::sync::atomic::AtomicU64,
    /// Signed for the same push/pop race as `queue_depth`.
    in_flight: std::sync::atomic::AtomicI64,
    worker_respawns: std::sync::atomic::AtomicU64,
    reactor_respawns: std::sync::atomic::AtomicU64,
    abandoned_tickets: std::sync::atomic::AtomicU64,
}

/// A point-in-time copy of [`ServeCounters`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests shed because the bounded queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because the tenant's in-flight quota was exhausted.
    pub shed_quota: u64,
    /// Accepted requests that completed with a plan.
    pub completed: u64,
    /// Accepted requests that completed with a planning error.
    pub failed: u64,
    /// Requests currently queued (gauge).
    pub queue_depth: u64,
    /// Highest queue depth observed since the counters were created (gauge;
    /// carried as-is through [`ServeSnapshot::delta`]).
    pub queue_depth_peak: u64,
    /// Requests currently being served by a dispatcher (gauge).
    pub in_flight: u64,
    /// Panicked workers/dispatchers caught and put back to work: executor
    /// poll panics contained in place plus dispatcher loops restarted by
    /// their supervisor. Zero on a healthy box.
    pub worker_respawns: u64,
    /// Reactor driver-thread restarts after a caught panic (each one also
    /// re-arms the surviving timer heap).
    pub reactor_respawns: u64,
    /// `PlanTicket`s dropped before their result was taken. The request
    /// still completes and releases its quota slot; this counts callers
    /// that walked away.
    pub abandoned_tickets: u64,
}

impl ServeSnapshot {
    /// Total requests shed by admission control, for any reason.
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full + self.shed_quota
    }

    /// Requests offered to the front end (accepted + shed).
    pub fn offered(&self) -> u64 {
        self.accepted + self.sheds()
    }

    /// The traffic between `earlier` and `self`: monotonic fields are
    /// subtracted field-wise, gauges (`queue_depth`, `queue_depth_peak`,
    /// `in_flight`) keep their current value.
    pub fn delta(&self, earlier: &ServeSnapshot) -> ServeSnapshot {
        ServeSnapshot {
            accepted: self.accepted - earlier.accepted,
            shed_queue_full: self.shed_queue_full - earlier.shed_queue_full,
            shed_quota: self.shed_quota - earlier.shed_quota,
            completed: self.completed - earlier.completed,
            failed: self.failed - earlier.failed,
            queue_depth: self.queue_depth,
            queue_depth_peak: self.queue_depth_peak,
            in_flight: self.in_flight,
            worker_respawns: self.worker_respawns - earlier.worker_respawns,
            reactor_respawns: self.reactor_respawns - earlier.reactor_respawns,
            abandoned_tickets: self.abandoned_tickets - earlier.abandoned_tickets,
        }
    }
}

impl ServeCounters {
    const ORD: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

    /// Records an admitted request: bumps `accepted` and the queue-depth
    /// gauge (tracking its peak).
    pub fn record_accept(&self) {
        self.accepted.fetch_add(1, Self::ORD);
        let depth = self.queue_depth.fetch_add(1, Self::ORD) + 1;
        self.queue_depth_peak
            .fetch_max(depth.max(0) as u64, Self::ORD);
    }

    /// Batch form of [`ServeCounters::record_accept`]: `n` admissions in
    /// one set of atomic updates (the 100k-requests/s admission path counts
    /// per pacing batch, not per request).
    pub fn record_accept_n(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.accepted.fetch_add(n, Self::ORD);
        let depth = self.queue_depth.fetch_add(n as i64, Self::ORD) + n as i64;
        self.queue_depth_peak
            .fetch_max(depth.max(0) as u64, Self::ORD);
    }

    /// Records a queue-full shed.
    pub fn record_shed_queue_full(&self) {
        self.shed_queue_full.fetch_add(1, Self::ORD);
    }

    /// Batch form of [`ServeCounters::record_shed_queue_full`].
    pub fn record_shed_queue_full_n(&self, n: u64) {
        if n > 0 {
            self.shed_queue_full.fetch_add(n, Self::ORD);
        }
    }

    /// Records a tenant-quota shed.
    pub fn record_shed_quota(&self) {
        self.shed_quota.fetch_add(1, Self::ORD);
    }

    /// Batch form of [`ServeCounters::record_shed_quota`].
    pub fn record_shed_quota_n(&self, n: u64) {
        if n > 0 {
            self.shed_quota.fetch_add(n, Self::ORD);
        }
    }

    /// Records a dispatch: the request leaves the queue and becomes
    /// in-flight.
    pub fn record_dispatch(&self) {
        self.queue_depth.fetch_sub(1, Self::ORD);
        self.in_flight.fetch_add(1, Self::ORD);
    }

    /// Batch form of [`ServeCounters::record_dispatch`]: a dispatcher that
    /// drained a chunk of `n` requests moves the gauges once.
    pub fn record_dispatch_n(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.queue_depth.fetch_sub(n as i64, Self::ORD);
        self.in_flight.fetch_add(n as i64, Self::ORD);
    }

    /// Records a completion (`ok` = the request produced a plan); the
    /// request leaves the in-flight gauge.
    pub fn record_done(&self, ok: bool) {
        self.in_flight.fetch_sub(1, Self::ORD);
        if ok {
            self.completed.fetch_add(1, Self::ORD);
        } else {
            self.failed.fetch_add(1, Self::ORD);
        }
    }

    /// Records a worker or dispatcher recovered after a caught panic.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Self::ORD);
    }

    /// Adds externally-tracked worker recoveries (e.g. the executor's own
    /// caught-panic count, folded in at snapshot time).
    pub fn record_worker_respawns_n(&self, n: u64) {
        if n > 0 {
            self.worker_respawns.fetch_add(n, Self::ORD);
        }
    }

    /// Records a reactor driver restart.
    pub fn record_reactor_respawn(&self) {
        self.reactor_respawns.fetch_add(1, Self::ORD);
    }

    /// Records a `PlanTicket` dropped before its result was taken.
    pub fn record_abandoned_ticket(&self) {
        self.abandoned_tickets.fetch_add(1, Self::ORD);
    }

    /// Current queue-depth gauge (clamped at 0; see the field docs).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Self::ORD).max(0) as u64
    }

    /// Current in-flight gauge (clamped at 0; see the field docs).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Self::ORD).max(0) as u64
    }

    /// Copies the current counts.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            accepted: self.accepted.load(Self::ORD),
            shed_queue_full: self.shed_queue_full.load(Self::ORD),
            shed_quota: self.shed_quota.load(Self::ORD),
            completed: self.completed.load(Self::ORD),
            failed: self.failed.load(Self::ORD),
            queue_depth: self.queue_depth(),
            queue_depth_peak: self.queue_depth_peak.load(Self::ORD),
            in_flight: self.in_flight(),
            worker_respawns: self.worker_respawns.load(Self::ORD),
            reactor_respawns: self.reactor_respawns.load(Self::ORD),
            abandoned_tickets: self.abandoned_tickets.load(Self::ORD),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inefficiency_ratio() {
        let c = Counters {
            evaluated: 500,
            ccp: 100,
            sets: 0,
            unranked: 0,
        };
        assert_eq!(c.inefficiency(), 5.0);
        assert_eq!(Counters::default().inefficiency(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters {
            evaluated: 1,
            ccp: 2,
            sets: 3,
            unranked: 4,
        };
        a.merge(&Counters {
            evaluated: 10,
            ccp: 20,
            sets: 30,
            unranked: 40,
        });
        assert_eq!(a.evaluated, 11);
        assert_eq!(a.ccp, 22);
        assert_eq!(a.sets, 33);
        assert_eq!(a.unranked, 44);
    }

    #[test]
    fn profile_totals_and_level_merge() {
        let mut p = Profile::default();
        p.record(LevelStats {
            size: 2,
            unranked: 10,
            sets: 5,
            evaluated: 20,
            ccp: 8,
            memo_writes: 5,
            ..Default::default()
        });
        p.record(LevelStats {
            size: 2,
            unranked: 1,
            sets: 1,
            evaluated: 2,
            ccp: 2,
            memo_writes: 1,
            ..Default::default()
        });
        p.record(LevelStats {
            size: 3,
            unranked: 0,
            sets: 4,
            evaluated: 12,
            ccp: 6,
            memo_writes: 4,
            ..Default::default()
        });
        assert_eq!(p.levels.len(), 2);
        let t = p.totals();
        assert_eq!(t.evaluated, 34);
        assert_eq!(t.ccp, 16);
        assert_eq!(t.sets, 10);
        assert_eq!(t.unranked, 11);
    }

    #[test]
    fn cache_delta_and_request_hit_rate() {
        let c = CacheCounters::default();
        c.record_hit();
        c.record_hit();
        c.record_miss();
        c.record_coalesced();
        let a = c.snapshot();
        assert_eq!((a.hits, a.misses, a.coalesced), (2, 1, 1));
        assert!((a.request_hit_rate() - 0.5).abs() < 1e-12);
        assert!((a.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.record_hit();
        c.record_coalesced();
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!((d.hits, d.misses, d.coalesced), (1, 0, 1));
        assert_eq!(d, b.since(&a), "since is an alias of delta");
    }

    #[test]
    fn serve_counters_track_gauges_and_windows() {
        let s = ServeCounters::default();
        s.record_accept();
        s.record_accept();
        s.record_accept();
        s.record_shed_queue_full();
        s.record_shed_quota();
        assert_eq!(s.queue_depth(), 3);
        s.record_dispatch();
        s.record_dispatch();
        assert_eq!((s.queue_depth(), s.in_flight()), (1, 2));
        s.record_done(true);
        s.record_done(false);
        let a = s.snapshot();
        assert_eq!(a.accepted, 3);
        assert_eq!(a.sheds(), 2);
        assert_eq!(a.offered(), 5);
        assert_eq!((a.completed, a.failed), (1, 1));
        assert_eq!(a.queue_depth_peak, 3);
        assert_eq!((a.queue_depth, a.in_flight), (1, 0));
        // A later window reports only its own traffic; gauges pass through.
        s.record_dispatch();
        s.record_done(true);
        let d = s.snapshot().delta(&a);
        assert_eq!((d.accepted, d.completed, d.failed), (0, 1, 0));
        assert_eq!(d.queue_depth, 0);
        assert_eq!(d.queue_depth_peak, 3);
    }
}
