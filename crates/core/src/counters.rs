//! Instrumentation counters and per-level profiles.
//!
//! The paper's efficiency argument is stated in terms of two counters
//! (§2.2/§2.3): `EvaluatedCounter`, the number of Join-Pairs an algorithm
//! evaluates, and `CCP-Counter`, the number of those that are valid CCP
//! pairs. Every optimizer in this workspace maintains both, plus per-DP-level
//! statistics that feed the hardware timing model (`mpdp-parallel::hwmodel`)
//! used to predict multi-core and GPU times on this single-core container.

/// Global counters for one optimizer run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Join-Pairs evaluated (`EvaluatedCounter` in Algorithm 1, line 9).
    pub evaluated: u64,
    /// Valid Join-Pairs, i.e. CCP pairs, counting symmetric pairs separately
    /// (`CCP-Counter`, Algorithm 1, line 18).
    pub ccp: u64,
    /// Connected sets enumerated across all levels (`|S_i|` summed).
    pub sets: u64,
    /// Candidate sets unranked before connectivity filtering (vertex-based
    /// algorithms unrank all `C(n, i)` combinations; edge-based ones don't
    /// unrank at all).
    pub unranked: u64,
}

impl Counters {
    /// Ratio `evaluated / ccp` — the paper's headline inefficiency metric
    /// (e.g. "2805 times larger ... at 25 relations" for DPSUB on stars).
    pub fn inefficiency(&self) -> f64 {
        if self.ccp == 0 {
            0.0
        } else {
            self.evaluated as f64 / self.ccp as f64
        }
    }

    /// Adds another counter set (used when merging per-thread results).
    pub fn merge(&mut self, other: &Counters) {
        self.evaluated += other.evaluated;
        self.ccp += other.ccp;
        self.sets += other.sets;
        self.unranked += other.unranked;
    }
}

/// Per-DP-level statistics (one entry per subset size `i`).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Subset size of this level.
    pub size: usize,
    /// Candidate sets unranked for this level (before the connectivity
    /// filter); 0 for edge-based enumeration.
    pub unranked: u64,
    /// Connected sets evaluated at this level.
    pub sets: u64,
    /// Join-Pairs evaluated at this level.
    pub evaluated: u64,
    /// CCP pairs found at this level.
    pub ccp: u64,
    /// Memo-table writes performed at this level.
    pub memo_writes: u64,
    /// Open-addressing probe steps taken by memo inserts at this level.
    pub memo_probes: u64,
    /// CAS retries in the shared atomic memo at this level (0 for
    /// single-threaded stores and single-worker runs).
    pub cas_retries: u64,
}

/// A whole run's per-level profile, consumed by the hardware model.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// One entry per DP level, in increasing subset size. Algorithms without
    /// a level structure (e.g. DPCCP's graph-order enumeration) record a
    /// single pseudo-level.
    pub levels: Vec<LevelStats>,
    /// Final memo health (load factor, probes, CAS retries), filled by the
    /// run's `finish` step.
    pub memo: Option<crate::memo::MemoHealth>,
}

impl Profile {
    /// Aggregates the per-level stats into run totals.
    pub fn totals(&self) -> Counters {
        let mut c = Counters::default();
        for l in &self.levels {
            c.evaluated += l.evaluated;
            c.ccp += l.ccp;
            c.sets += l.sets;
            c.unranked += l.unranked;
        }
        c
    }

    /// Adds a level, merging with an existing entry of the same size if any
    /// (parallel workers report fragments of the same level).
    pub fn record(&mut self, stats: LevelStats) {
        if let Some(l) = self.levels.iter_mut().find(|l| l.size == stats.size) {
            l.unranked += stats.unranked;
            l.sets += stats.sets;
            l.evaluated += stats.evaluated;
            l.ccp += stats.ccp;
            l.memo_writes += stats.memo_writes;
            l.memo_probes += stats.memo_probes;
            l.cas_retries += stats.cas_retries;
        } else {
            self.levels.push(stats);
        }
    }
}

/// Aggregate counters for one plan execution (`mpdp-exec`).
///
/// The execution-side sibling of [`Counters`]: where `evaluated`/`ccp`
/// summarize what an *optimizer* did, these summarize what the chosen plan
/// then *cost* to run — rows through the hash-join build and probe phases,
/// rows emitted, probe morsels processed. `feedback_invalidations` counts
/// cached plans a serving layer evicted because this (or an aggregated)
/// execution observed a root cardinality far from the estimate; the
/// executor itself leaves it 0.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Rows inserted into hash tables across all joins.
    pub build_rows: u64,
    /// Rows streamed through probe sides across all joins.
    pub probe_rows: u64,
    /// Rows emitted by join operators (intermediate + root).
    pub output_rows: u64,
    /// Probe morsels processed.
    pub batches: u64,
    /// Join operators executed.
    pub joins: u64,
    /// Cached plans invalidated by cardinality feedback (serving layer).
    pub feedback_invalidations: u64,
}

impl ExecCounters {
    /// Adds another counter set (e.g. when aggregating a workload's runs).
    pub fn merge(&mut self, other: &ExecCounters) {
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.output_rows += other.output_rows;
        self.batches += other.batches;
        self.joins += other.joins;
        self.feedback_invalidations += other.feedback_invalidations;
    }

    /// Total rows touched by join machinery (built + probed + emitted) —
    /// the executor's coarse "work" measure, used by the bench report to
    /// compare plans of one query independent of wall-clock noise.
    pub fn rows_touched(&self) -> u64 {
        self.build_rows + self.probe_rows + self.output_rows
    }
}

/// Thread-safe hit/miss/eviction counters for a serving-layer cache.
///
/// The same observability idea as [`Counters`] — cheap monotonic counts that
/// summarize a run — lifted from one optimization to a cache serving many.
/// All updates are relaxed atomics: the counts are statistics, not
/// synchronization, and a [`CacheCounters::snapshot`] taken after all
/// requests have drained is exact (asserted by the concurrent hammer test).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    insertions: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
    expirations: std::sync::atomic::AtomicU64,
    feedback_checks: std::sync::atomic::AtomicU64,
    feedback_invalidations: std::sync::atomic::AtomicU64,
}

/// A point-in-time copy of [`CacheCounters`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted by capacity (LRU order).
    pub evictions: u64,
    /// Entries dropped because their TTL had lapsed.
    pub expirations: u64,
    /// Execution reports fed back through the service's `observe` hook.
    pub feedback_checks: u64,
    /// Cached plans evicted because an observed root cardinality deviated
    /// from the estimate beyond the feedback threshold.
    pub feedback_invalidations: u64,
}

impl CacheSnapshot {
    /// `hits / (hits + misses)`; 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity between `earlier` and `self` (counters are monotonic,
    /// so a field-wise difference is a window's worth of traffic).
    pub fn since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            expirations: self.expirations - earlier.expirations,
            feedback_checks: self.feedback_checks - earlier.feedback_checks,
            feedback_invalidations: self.feedback_invalidations - earlier.feedback_invalidations,
        }
    }
}

impl CacheCounters {
    const ORD: std::sync::atomic::Ordering = std::sync::atomic::Ordering::Relaxed;

    /// Records a cache hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Self::ORD);
    }

    /// Records a cache miss.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Self::ORD);
    }

    /// Records an insertion.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Self::ORD);
    }

    /// Records a capacity eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Self::ORD);
    }

    /// Records a TTL expiration.
    pub fn record_expiration(&self) {
        self.expirations.fetch_add(1, Self::ORD);
    }

    /// Records a cardinality-feedback check (`observe` call).
    pub fn record_feedback_check(&self) {
        self.feedback_checks.fetch_add(1, Self::ORD);
    }

    /// Records a cardinality-feedback invalidation.
    pub fn record_feedback_invalidation(&self) {
        self.feedback_invalidations.fetch_add(1, Self::ORD);
    }

    /// Copies the current counts.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Self::ORD),
            misses: self.misses.load(Self::ORD),
            insertions: self.insertions.load(Self::ORD),
            evictions: self.evictions.load(Self::ORD),
            expirations: self.expirations.load(Self::ORD),
            feedback_checks: self.feedback_checks.load(Self::ORD),
            feedback_invalidations: self.feedback_invalidations.load(Self::ORD),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inefficiency_ratio() {
        let c = Counters {
            evaluated: 500,
            ccp: 100,
            sets: 0,
            unranked: 0,
        };
        assert_eq!(c.inefficiency(), 5.0);
        assert_eq!(Counters::default().inefficiency(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters {
            evaluated: 1,
            ccp: 2,
            sets: 3,
            unranked: 4,
        };
        a.merge(&Counters {
            evaluated: 10,
            ccp: 20,
            sets: 30,
            unranked: 40,
        });
        assert_eq!(a.evaluated, 11);
        assert_eq!(a.ccp, 22);
        assert_eq!(a.sets, 33);
        assert_eq!(a.unranked, 44);
    }

    #[test]
    fn profile_totals_and_level_merge() {
        let mut p = Profile::default();
        p.record(LevelStats {
            size: 2,
            unranked: 10,
            sets: 5,
            evaluated: 20,
            ccp: 8,
            memo_writes: 5,
            ..Default::default()
        });
        p.record(LevelStats {
            size: 2,
            unranked: 1,
            sets: 1,
            evaluated: 2,
            ccp: 2,
            memo_writes: 1,
            ..Default::default()
        });
        p.record(LevelStats {
            size: 3,
            unranked: 0,
            sets: 4,
            evaluated: 12,
            ccp: 6,
            memo_writes: 4,
            ..Default::default()
        });
        assert_eq!(p.levels.len(), 2);
        let t = p.totals();
        assert_eq!(t.evaluated, 34);
        assert_eq!(t.ccp, 16);
        assert_eq!(t.sets, 10);
        assert_eq!(t.unranked, 11);
    }
}
