//! Query canonicalization and fingerprinting for whole-query plan caching.
//!
//! The DP memo already caches canonical *subplans* within one optimization;
//! a serving layer wants the same amortization across *whole queries*: the
//! same query shape arrives over and over with its relations listed in a
//! different order (different FROM-clause order, different alias numbering),
//! and re-running the full DP for each arrival wastes the latency budget.
//!
//! [`canonicalize`] relabels a [`LargeQuery`]'s relations into a canonical
//! order so that *isomorphic* queries — identical up to a permutation of
//! relation indices — collide on one key. The canonical order is produced by
//! a degree/cardinality-sorted BFS:
//!
//! 1. every vertex gets a local signature (degree, row count, scan cost, the
//!    sorted multiset of its incident selectivities);
//! 2. two rounds of Weisfeiler–Lehman-style refinement mix each signature
//!    with the sorted signatures of its neighbours, separating vertices that
//!    are locally identical but sit in different graph positions;
//! 3. a BFS-style traversal starts from the vertex with the smallest refined
//!    signature and repeatedly appends the frontier vertex with the smallest
//!    (signature, edge-selectivity-to-visited) key.
//!
//! Relabeled copies of one query have identical signature multisets, so the
//! traversal visits corresponding vertices in the same order and the
//! canonical form — and therefore the fingerprint — is identical. (Exact
//! attribute ties between genuinely different vertices can in principle order
//! differently across relabelings; with real-valued cardinalities and
//! selectivities such ties are vanishing, and a tie that *is* hit only costs
//! a cache miss, never a wrong plan: the fingerprint still hashes the full
//! canonical structure.)
//!
//! The fingerprint itself hashes the canonical edge list (endpoints +
//! selectivity bits) and the canonical per-relation cardinalities/costs with
//! the workspace's Murmur3 finalizer ([`crate::memo::murmur3_fmix64`]) into
//! 128 bits — two independently-seeded 64-bit lanes, so a serving cache can
//! key on it without practical collision concern.

use crate::memo::murmur3_fmix64;
use crate::query::LargeQuery;
use std::fmt;

/// A 128-bit query fingerprint: equal for isomorphic (relabeled) queries.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// High 64 bits (lane seeded independently from [`Fingerprint::lo`]).
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Fingerprint {
    /// The fingerprint as one 128-bit integer (cache shard/key form).
    #[inline]
    pub fn as_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:016x}{:016x})", self.hi, self.lo)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// The canonical form of a query: its fingerprint plus the permutations
/// needed to translate plans between the caller's labels and canonical ones.
#[derive(Clone, Debug)]
pub struct CanonicalQuery {
    /// The 128-bit fingerprint of the canonical form.
    pub fingerprint: Fingerprint,
    /// `order[c]` = the caller's relation index occupying canonical slot `c`.
    pub order: Vec<u32>,
    /// `slot[r]` = the canonical slot of the caller's relation `r`
    /// (the inverse permutation of [`CanonicalQuery::order`]).
    pub slot: Vec<u32>,
}

/// Hashes one 64-bit word into both fingerprint lanes.
#[inline]
fn mix(acc: &mut (u64, u64), word: u64) {
    // Distinct odd constants decorrelate the lanes; each absorb step is a
    // multiply-xor feed into the Murmur3 finalizer.
    acc.0 = murmur3_fmix64(acc.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ word);
    acc.1 = murmur3_fmix64(acc.1.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ word);
}

/// Reusable buffers for [`canonicalize`]. The serving hot path fingerprints
/// every arrival, and at 100k+ requests/s the ~`n + 9` transient Vec
/// allocations per call were a measurable slice of the hit latency — the
/// scratch space makes the whole computation allocation-free except for the
/// returned `order`/`slot` permutations.
#[derive(Default)]
struct Scratch {
    sig: Vec<u64>,
    next: Vec<u64>,
    neigh: Vec<u64>,
    visited: Vec<bool>,
    frontier: Vec<bool>,
    link: Vec<f64>,
    edges: Vec<(u32, u32, u64)>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

/// One refinement round: `sig'(v) = H(sig(v), sorted sigs of neighbours)`,
/// written from `sig` into `next` (reused buffers).
fn refine(q: &LargeQuery, sig: &[u64], next: &mut Vec<u64>, neigh: &mut Vec<u64>) {
    next.clear();
    for v in 0..q.num_rels() {
        neigh.clear();
        for &(w, sel) in &q.adj[v] {
            neigh.push(murmur3_fmix64(sig[w as usize] ^ sel.to_bits()));
        }
        neigh.sort_unstable();
        let mut h = murmur3_fmix64(sig[v]);
        for &nh in neigh.iter() {
            h = murmur3_fmix64(h.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ nh);
        }
        next.push(h);
    }
}

/// Computes the canonical order and fingerprint of `q`.
///
/// Runs in `O(E log E)` per refinement round plus `O(V^2)` for the sorted
/// traversal — microseconds for serving-sized queries, against DP planning
/// times in the millisecond-to-second range.
pub fn canonicalize(q: &LargeQuery) -> CanonicalQuery {
    SCRATCH.with(|s| canonicalize_with(q, &mut s.borrow_mut()))
}

fn canonicalize_with(q: &LargeQuery, scratch: &mut Scratch) -> CanonicalQuery {
    let n = q.num_rels();
    let Scratch {
        sig,
        next,
        neigh,
        visited,
        frontier,
        link,
        edges,
    } = scratch;

    // Local signatures: degree, cardinality, scan cost, incident sels.
    sig.clear();
    for v in 0..n {
        let mut h = murmur3_fmix64(q.adj[v].len() as u64);
        h = murmur3_fmix64(h ^ q.rels[v].rows.to_bits());
        h = murmur3_fmix64(h ^ q.rels[v].cost.to_bits());
        neigh.clear();
        neigh.extend(q.adj[v].iter().map(|&(_, s)| s.to_bits()));
        neigh.sort_unstable();
        for &s in neigh.iter() {
            h = murmur3_fmix64(h.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ s);
        }
        sig.push(h);
    }
    // Two WL rounds separate locally-identical vertices by position.
    refine(q, sig, next, neigh);
    refine(q, next, sig, neigh);

    // Degree/cardinality-sorted BFS: visit order is determined entirely by
    // label-invariant keys, so relabeled copies traverse identically.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut slot: Vec<u32> = vec![u32::MAX; n];
    visited.clear();
    visited.resize(n, false);
    // Selectivity product between each vertex and the visited set — the BFS
    // tie-breaker that keeps the traversal deterministic across relabelings
    // even when two signatures collide.
    link.clear();
    link.resize(n, 1.0);
    // `frontier[v]` = v is adjacent to the visited set; maintained when a
    // vertex is visited, so each selection round is a flat O(n) key scan
    // instead of re-deriving adjacency per candidate.
    frontier.clear();
    frontier.resize(n, false);
    for _ in 0..n {
        // Frontier = unvisited vertices adjacent to the visited set (or, if
        // none — start/new component — every unvisited vertex).
        let mut best: Option<usize> = None;
        let mut best_key = (false, 0u64, 0u64);
        for v in 0..n {
            if visited[v] {
                continue;
            }
            let key = (!frontier[v], sig[v], link[v].to_bits());
            if best.is_none() || key < best_key {
                best = Some(v);
                best_key = key;
            }
        }
        let v = best.expect("one unvisited vertex per iteration");
        slot[v] = order.len() as u32;
        order.push(v as u32);
        visited[v] = true;
        for &(w, sel) in &q.adj[v] {
            link[w as usize] *= sel;
            frontier[w as usize] = true;
        }
    }

    // Fingerprint the canonical form.
    let mut acc = (0x6d70_6470_5f66_7031_u64, 0x6d70_6470_5f66_7032_u64);
    mix(&mut acc, n as u64);
    for &v in &order {
        mix(&mut acc, q.rels[v as usize].rows.to_bits());
        mix(&mut acc, q.rels[v as usize].cost.to_bits());
    }
    // Canonical edge list, sorted by canonical endpoints.
    edges.clear();
    edges.extend(q.edges.iter().map(|e| {
        let (a, b) = (slot[e.u as usize], slot[e.v as usize]);
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        (a, b, e.sel.to_bits())
    }));
    edges.sort_unstable();
    mix(&mut acc, edges.len() as u64);
    for &(a, b, s) in edges.iter() {
        mix(&mut acc, (a as u64) << 32 | b as u64);
        mix(&mut acc, s);
    }

    CanonicalQuery {
        fingerprint: Fingerprint {
            hi: acc.0,
            lo: acc.1,
        },
        order,
        slot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RelInfo;

    fn chain(n: usize) -> LargeQuery {
        let mut q = LargeQuery::new(
            (0..n)
                .map(|i| RelInfo::new(100.0 * (i + 1) as f64, 10.0 * (i + 1) as f64))
                .collect(),
        );
        for i in 1..n {
            q.add_edge(i - 1, i, 0.01 * i as f64);
        }
        q
    }

    #[test]
    fn relabeled_queries_share_a_fingerprint() {
        let q = chain(8);
        // Reverse relabeling: old index i -> new index n-1-i.
        let perm: Vec<usize> = (0..8).rev().collect();
        let r = q.relabel(&perm);
        let cq = canonicalize(&q);
        let cr = canonicalize(&r);
        assert_eq!(cq.fingerprint, cr.fingerprint);
        // The canonical orders must name corresponding originals: canonical
        // slot c of `r` holds the relabeled image of `q`'s slot-c relation.
        for c in 0..8 {
            assert_eq!(perm[cq.order[c] as usize] as u32, cr.order[c]);
        }
    }

    #[test]
    fn different_statistics_change_the_fingerprint() {
        let a = chain(6);
        let mut b = chain(6);
        b.rels[3].rows *= 2.0;
        assert_ne!(canonicalize(&a).fingerprint, canonicalize(&b).fingerprint);
        // Different selectivity.
        let mut c = chain(6);
        c.edges[2].sel *= 0.5;
        c.adj[2].iter_mut().for_each(|e| {
            if e.0 == 3 {
                e.1 *= 0.5;
            }
        });
        c.adj[3].iter_mut().for_each(|e| {
            if e.0 == 2 {
                e.1 *= 0.5;
            }
        });
        assert_ne!(canonicalize(&a).fingerprint, canonicalize(&c).fingerprint);
    }

    #[test]
    fn different_shapes_change_the_fingerprint() {
        let chain = chain(5);
        // A star with the same RelInfos: different edge structure.
        let mut star = LargeQuery::new(chain.rels.clone());
        for i in 1..5 {
            star.add_edge(0, i, 0.01 * i as f64);
        }
        assert_ne!(
            canonicalize(&chain).fingerprint,
            canonicalize(&star).fingerprint
        );
    }

    #[test]
    fn order_and_slot_are_inverse_permutations() {
        let q = chain(9);
        let c = canonicalize(&q);
        for (canon, &orig) in c.order.iter().enumerate() {
            assert_eq!(c.slot[orig as usize] as usize, canon);
        }
    }

    #[test]
    fn singleton_and_disconnected_queries_canonicalize() {
        let one = LargeQuery::new(vec![RelInfo::new(5.0, 1.0)]);
        let c = canonicalize(&one);
        assert_eq!(c.order, vec![0]);
        // Two-component query (cross-product at the top): still deterministic.
        let mut two = LargeQuery::new(vec![
            RelInfo::new(10.0, 1.0),
            RelInfo::new(20.0, 2.0),
            RelInfo::new(30.0, 3.0),
        ]);
        two.add_edge(0, 1, 0.5);
        let ct = canonicalize(&two);
        let perm = vec![2usize, 0, 1];
        let cr = canonicalize(&two.relabel(&perm));
        assert_eq!(ct.fingerprint, cr.fingerprint);
    }
}
