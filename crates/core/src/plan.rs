//! Join-tree plans and their validation.

use crate::bitset::RelSet;
use crate::graph::JoinGraph;
use crate::memo::MemoStore;
use std::fmt;

/// A (bushy) join tree annotated with cost estimates.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanTree {
    /// A base-relation scan.
    Scan {
        /// Relation index.
        rel: u32,
        /// Estimated rows.
        rows: f64,
        /// Scan cost.
        cost: f64,
    },
    /// An inner join of two subplans.
    Join {
        /// Left input.
        left: Box<PlanTree>,
        /// Right input.
        right: Box<PlanTree>,
        /// Estimated output rows.
        rows: f64,
        /// Cumulative cost including both inputs.
        cost: f64,
    },
}

impl PlanTree {
    /// The set of base relations covered by this plan. Only valid for plans
    /// over ≤64 relations (the exact-DP regime).
    pub fn rel_set(&self) -> RelSet {
        match self {
            PlanTree::Scan { rel, .. } => RelSet::singleton(*rel as usize),
            PlanTree::Join { left, right, .. } => left.rel_set().union(right.rel_set()),
        }
    }

    /// Total cost at the root.
    pub fn cost(&self) -> f64 {
        match self {
            PlanTree::Scan { cost, .. } | PlanTree::Join { cost, .. } => *cost,
        }
    }

    /// Estimated output rows at the root.
    pub fn rows(&self) -> f64 {
        match self {
            PlanTree::Scan { rows, .. } | PlanTree::Join { rows, .. } => *rows,
        }
    }

    /// Number of base relations in the tree.
    pub fn num_rels(&self) -> usize {
        match self {
            PlanTree::Scan { .. } => 1,
            PlanTree::Join { left, right, .. } => left.num_rels() + right.num_rels(),
        }
    }

    /// Number of join nodes.
    pub fn num_joins(&self) -> usize {
        match self {
            PlanTree::Scan { .. } => 0,
            PlanTree::Join { left, right, .. } => 1 + left.num_joins() + right.num_joins(),
        }
    }

    /// `true` if the tree is left-deep (every right child is a scan).
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanTree::Scan { .. } => true,
            PlanTree::Join { left, right, .. } => {
                matches!(**right, PlanTree::Scan { .. }) && left.is_left_deep()
            }
        }
    }

    /// Validates the structural invariants of a plan against a join graph:
    ///
    /// 1. every join's inputs cover disjoint relation sets;
    /// 2. every join's two sides are connected to each other in the graph
    ///    (no cross products — condition 4 of §2.1);
    /// 3. every join's inputs induce connected subgraphs (conditions 2);
    ///
    /// Returns a human-readable violation description, or `None` if valid.
    pub fn validate(&self, graph: &JoinGraph) -> Option<String> {
        match self {
            PlanTree::Scan { .. } => None,
            PlanTree::Join { left, right, .. } => {
                let (ls, rs) = (left.rel_set(), right.rel_set());
                if !ls.is_disjoint(rs) {
                    return Some(format!("overlapping join inputs {ls} and {rs}"));
                }
                if !graph.is_connected(ls) {
                    return Some(format!("left input {ls} not connected"));
                }
                if !graph.is_connected(rs) {
                    return Some(format!("right input {rs} not connected"));
                }
                if !graph.sets_connected(ls, rs) {
                    return Some(format!("cross product between {ls} and {rs}"));
                }
                left.validate(graph).or_else(|| right.validate(graph))
            }
        }
    }

    /// Returns the same tree with each leaf's relation `r` renamed to
    /// `new_of_old[r]`. Costs and cardinalities are untouched — a pure
    /// relabeling, valid because plan statistics are label-invariant.
    ///
    /// The serving layer uses this in both directions: storing plans in
    /// canonical relation slots, and remapping a cached canonical plan onto
    /// a caller's own relation ids.
    pub fn relabel(&self, new_of_old: &[u32]) -> PlanTree {
        match self {
            PlanTree::Scan { rel, rows, cost } => PlanTree::Scan {
                rel: new_of_old[*rel as usize],
                rows: *rows,
                cost: *cost,
            },
            PlanTree::Join {
                left,
                right,
                rows,
                cost,
            } => PlanTree::Join {
                left: Box::new(left.relabel(new_of_old)),
                right: Box::new(right.relabel(new_of_old)),
                rows: *rows,
                cost: *cost,
            },
        }
    }

    /// Renders an indented tree, e.g. for the examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PlanTree::Scan { rel, rows, cost } => {
                out.push_str(&format!(
                    "{pad}Scan R{rel} (rows={rows:.0}, cost={cost:.1})\n"
                ));
            }
            PlanTree::Join {
                left,
                right,
                rows,
                cost,
            } => {
                out.push_str(&format!("{pad}Join (rows={rows:.0}, cost={cost:.1})\n"));
                left.render_into(out, depth + 1);
                right.render_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Reconstructs the best plan for `root` from a filled memo store (the final
/// step of Algorithm 5: "The final relation is recursively fetched using its
/// left and right join relations, building a join tree in CPU memory") —
/// generic over [`MemoStore`], so it walks the sequential table and the
/// lock-free shared one identically.
///
/// Returns `None` if the memo has no entry for `root` or one of its splits —
/// which indicates a bug in the filling algorithm.
pub fn extract_plan<M: MemoStore>(memo: &M, root: RelSet) -> Option<PlanTree> {
    let e = memo.get(root)?;
    if e.is_leaf() {
        let rel = root.first()? as u32;
        return Some(PlanTree::Scan {
            rel,
            rows: e.rows,
            cost: e.cost,
        });
    }
    let left = extract_plan(memo, e.left)?;
    let right = extract_plan(memo, e.right())?;
    Some(PlanTree::Join {
        left: Box::new(left),
        right: Box::new(right),
        rows: e.rows,
        cost: e.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: u32, rows: f64) -> PlanTree {
        PlanTree::Scan {
            rel,
            rows,
            cost: rows / 10.0,
        }
    }

    fn join(l: PlanTree, r: PlanTree) -> PlanTree {
        let rows = l.rows() * r.rows() * 0.01;
        let cost = l.cost() + r.cost() + rows;
        PlanTree::Join {
            left: Box::new(l),
            right: Box::new(r),
            rows,
            cost,
        }
    }

    #[test]
    fn rel_set_and_shape_accessors() {
        let p = join(join(scan(0, 100.0), scan(1, 100.0)), scan(2, 100.0));
        assert_eq!(p.rel_set(), RelSet::from_indices([0, 1, 2]));
        assert_eq!(p.num_rels(), 3);
        assert_eq!(p.num_joins(), 2);
        assert!(p.is_left_deep());
        let bushy = join(
            join(scan(0, 10.0), scan(1, 10.0)),
            join(scan(2, 10.0), scan(3, 10.0)),
        );
        assert!(!bushy.is_left_deep());
    }

    #[test]
    fn validate_detects_cross_product() {
        let mut g = JoinGraph::new(3);
        g.add_edge(0, 1, 0.1);
        // 2 is connected to nothing: joining {0,1} with {2} is a cross product.
        let p = join(join(scan(0, 10.0), scan(1, 10.0)), scan(2, 10.0));
        let err = p.validate(&g).unwrap();
        assert!(err.contains("cross product"), "{err}");
        // Chain 0-1-2 is fine.
        let mut g2 = JoinGraph::new(3);
        g2.add_edge(0, 1, 0.1);
        g2.add_edge(1, 2, 0.1);
        assert!(p.validate(&g2).is_none());
    }

    #[test]
    fn validate_detects_disconnected_input() {
        let mut g = JoinGraph::new(4);
        g.add_edge(0, 1, 0.1);
        g.add_edge(1, 2, 0.1);
        g.add_edge(2, 3, 0.1);
        // {0, 2} is not connected (0-1-2 requires 1).
        let bad = join(
            join(scan(0, 10.0), scan(2, 10.0)),
            join(scan(1, 10.0), scan(3, 10.0)),
        );
        assert!(bad.validate(&g).is_some());
    }

    #[test]
    fn extract_plan_from_memo() {
        use crate::memo::MemoTable;
        let mut m = MemoTable::with_capacity(8);
        m.insert_leaf(0, 10.0, 1.0);
        m.insert_leaf(1, 20.0, 2.0);
        m.insert_leaf(2, 30.0, 3.0);
        let s01 = RelSet::from_indices([0, 1]);
        m.insert_if_better(s01, RelSet::singleton(0), 10.0, 5.0);
        let s012 = RelSet::from_indices([0, 1, 2]);
        m.insert_if_better(s012, s01, 20.0, 2.0);
        let p = extract_plan(&m, s012).unwrap();
        assert_eq!(p.rel_set(), s012);
        assert_eq!(p.cost(), 20.0);
        assert_eq!(p.num_joins(), 2);
        // Missing root -> None.
        assert!(extract_plan(&m, RelSet::from_indices([0, 2])).is_none());
    }

    #[test]
    fn render_contains_structure() {
        let p = join(scan(0, 10.0), scan(1, 20.0));
        let s = p.render();
        assert!(s.contains("Join"));
        assert!(s.contains("Scan R0"));
        assert!(s.contains("Scan R1"));
    }
}
