//! Seeded, deterministic fault injection for the serving stack.
//!
//! Robustness claims need *tests*, and the failure modes worth testing —
//! a worker panicking mid-poll, a reactor tick stalling, a planner blowing
//! up under a single-flight leader — are exactly the ones that never occur
//! on a healthy box. This module gives the serving crates named injection
//! points and a way to schedule faults at them deterministically: a
//! [`FaultPlan`] maps `(site name, invocation index)` to a [`FaultAction`],
//! and [`FaultPlan::seeded`] derives a whole schedule from one `u64` so a
//! chaos run is reproducible from its seed alone (the same discipline the
//! production async service loops this crate's serving tier is modeled on
//! use for their integration suites).
//!
//! ## Cost when unarmed
//!
//! Production constructs [`Faults::disarmed`] (the `Default`). Its handle
//! holds no allocation and [`Faults::check`] is a single `Option`
//! discriminant test — the instrumented hot paths (queue push/pop, task
//! polls, reactor ticks) pay one predictable branch.
//!
//! ## Interpreting actions
//!
//! `check` only *returns* the scheduled action; the call site applies it,
//! because only the site knows what a fault means there:
//!
//! * [`FaultAction::Panic`] — `panic!` at the site. The surrounding
//!   machinery (catch-unwind task polls, dispatcher supervisors, lease
//!   guards, poison-recovering locks) must contain it; that containment is
//!   what the chaos suite asserts.
//! * [`FaultAction::Stall`] — sleep the calling thread, simulating a
//!   descheduled worker, a slow disk, a GC pause.
//! * [`FaultAction::Error`] — fail the operation with its ordinary error
//!   path (e.g. the planner returns `OptError::Internal`). Sites with no
//!   error channel treat it as a no-op.
//!
//! Most call sites use [`Faults::apply_panic_stall`], which handles the
//! first two uniformly and returns `true` when the site should take its
//! error path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::memo::murmur3_fmix64;

/// Well-known fault-site names. Free-form strings are accepted too; these
/// constants are the sites the serving stack registers.
pub mod site {
    /// Admission-queue push (`Bounded::try_push` / `try_push_batch`),
    /// checked once per call on the submitter's thread.
    pub const QUEUE_PUSH: &str = "queue.push";
    /// Admission-queue pop (`Pop::poll` / `drain_into`), checked before an
    /// item is removed so an injected panic never loses a request.
    pub const QUEUE_POP: &str = "queue.pop";
    /// Dispatcher chunk processing, checked once per drained chunk.
    pub const DISPATCH_CHUNK: &str = "dispatch.chunk";
    /// Planner invocation (the cold path of `PlanService`), checked right
    /// before the routed strategy runs.
    pub const PLANNER_INVOKE: &str = "planner.invoke";
    /// Executor task poll, checked inside the worker's catch-unwind region
    /// before the future is polled.
    pub const EXECUTOR_POLL: &str = "executor.poll";
    /// Reactor driver tick, checked at the top of each driver-loop
    /// iteration before due timers are popped.
    pub const REACTOR_TICK: &str = "reactor.tick";
}

/// What an armed fault does when its `(site, index)` is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` at the site (the site's containment machinery is the thing
    /// under test).
    Panic,
    /// Sleep the calling thread for the given duration.
    Stall(Duration),
    /// Fail the operation through the site's ordinary error path; a no-op
    /// at sites without one.
    Error,
}

/// A deterministic fault schedule: `(site, invocation index) → action`.
///
/// Build one explicitly with [`FaultPlan::fault`] for targeted tests, or
/// derive a whole schedule from a seed with [`FaultPlan::seeded`]; then
/// [`FaultPlan::arm`] it into the cheap shareable [`Faults`] handle the
/// serving components take.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<(String, u64, FaultAction)>,
}

/// The sites a seeded schedule draws from, with the index window scaled to
/// how often each site fires in a small chaos run and the actions that are
/// safe there (submitter-thread sites never panic, so a seeded schedule
/// cannot unwind the caller of `submit`; targeted tests can still build
/// such plans explicitly).
const SEEDED_SITES: &[(&str, u64, &[FaultAction])] = &[
    (
        site::QUEUE_PUSH,
        160,
        &[FaultAction::Stall(Duration::from_millis(2))],
    ),
    (
        site::QUEUE_POP,
        120,
        &[
            FaultAction::Panic,
            FaultAction::Stall(Duration::from_millis(3)),
        ],
    ),
    (
        site::DISPATCH_CHUNK,
        60,
        &[
            FaultAction::Panic,
            FaultAction::Stall(Duration::from_millis(5)),
        ],
    ),
    (
        site::PLANNER_INVOKE,
        48,
        &[
            FaultAction::Panic,
            FaultAction::Error,
            FaultAction::Stall(Duration::from_millis(8)),
        ],
    ),
    (
        site::EXECUTOR_POLL,
        400,
        &[
            FaultAction::Panic,
            FaultAction::Stall(Duration::from_millis(1)),
        ],
    ),
    (
        site::REACTOR_TICK,
        80,
        &[
            FaultAction::Panic,
            FaultAction::Stall(Duration::from_millis(10)),
        ],
    ),
];

impl FaultPlan {
    /// An empty plan (arming it yields a handle that never fires but still
    /// counts invocations).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `action` at the `index`-th invocation (0-based) of `site`.
    pub fn fault(mut self, site: &str, index: u64, action: FaultAction) -> FaultPlan {
        self.faults.push((site.to_string(), index, action));
        self
    }

    /// Derives a deterministic schedule from `seed`: for each known site,
    /// zero to three faults at hashed invocation indices with hashed
    /// actions. Two runs with the same seed see byte-identical schedules;
    /// distinct seeds explore different interleavings. Every seed schedules
    /// at least one fault.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for (slot, &(name, window, actions)) in SEEDED_SITES.iter().enumerate() {
            let base = murmur3_fmix64(seed ^ murmur3_fmix64(0x9e37_79b9 + slot as u64));
            let count = base % 3; // 0..=2 faults per site
            for k in 0..count {
                let h = murmur3_fmix64(base ^ (0xa076_1d64 * (k + 1)));
                let index = h % window;
                let action = actions[(h >> 17) as usize % actions.len()];
                plan = plan.fault(name, index, action);
            }
        }
        if plan.faults.is_empty() {
            // Degenerate seed: still inject something so every seed is a
            // real chaos run.
            plan = plan.fault(site::PLANNER_INVOKE, seed % 8, FaultAction::Panic);
        }
        plan
    }

    /// Human-readable schedule listing (one `site@index action` per line),
    /// for chaos-run logs.
    pub fn describe(&self) -> String {
        let mut lines: Vec<String> = self
            .faults
            .iter()
            .map(|(s, i, a)| format!("{s}@{i} {a:?}"))
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Freezes the plan into the shareable handle the serving components
    /// take.
    pub fn arm(self) -> Faults {
        let mut sites: HashMap<String, SiteState> = HashMap::new();
        for (site, index, action) in self.faults {
            sites
                .entry(site)
                .or_default()
                .scheduled
                .push((index, action));
        }
        for s in sites.values_mut() {
            s.scheduled.sort_by_key(|&(i, _)| i);
            s.scheduled.dedup_by_key(|&mut (i, _)| i);
        }
        Faults {
            inner: Some(Arc::new(Armed {
                sites,
                fired: AtomicU64::new(0),
            })),
        }
    }
}

#[derive(Debug, Default)]
struct SiteState {
    /// Invocations of this site so far (counted even past the last
    /// scheduled fault, so schedules compose with re-runs predictably).
    invocations: AtomicU64,
    /// `(index, action)` sorted by index, unique indices.
    scheduled: Vec<(u64, FaultAction)>,
    fired: AtomicU64,
}

#[derive(Debug)]
struct Armed {
    sites: HashMap<String, SiteState>,
    fired: AtomicU64,
}

/// Shareable fault-injection handle. Clone freely; all clones observe one
/// shared invocation count per site. [`Faults::disarmed`] (the `Default`)
/// is the production no-op.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    inner: Option<Arc<Armed>>,
}

impl Faults {
    /// The production handle: never fires, costs one branch per check.
    pub fn disarmed() -> Faults {
        Faults { inner: None }
    }

    /// `true` if a plan is armed (even an empty one).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Counts one invocation of `site` and returns the scheduled action for
    /// this index, if any. The unarmed fast path returns `None` without
    /// touching any shared state.
    #[inline]
    pub fn check(&self, site: &str) -> Option<FaultAction> {
        let armed = self.inner.as_ref()?;
        let state = armed.sites.get(site)?;
        let index = state.invocations.fetch_add(1, Ordering::Relaxed);
        match state.scheduled.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => {
                state.fired.fetch_add(1, Ordering::Relaxed);
                armed.fired.fetch_add(1, Ordering::Relaxed);
                Some(state.scheduled[pos].1)
            }
            Err(_) => None,
        }
    }

    /// [`Faults::check`] plus uniform handling of the two actions every
    /// site supports: `Panic` panics here, `Stall` sleeps here. Returns
    /// `true` when the site should take its error path (`Error` was
    /// scheduled), `false` otherwise.
    #[inline]
    pub fn apply_panic_stall(&self, site: &str) -> bool {
        let Some(action) = self.check(site) else {
            return false;
        };
        match action {
            FaultAction::Panic => panic!("injected fault: panic at {site}"),
            FaultAction::Stall(d) => {
                std::thread::sleep(d);
                false
            }
            FaultAction::Error => true,
        }
    }

    /// Total faults fired so far, across all sites.
    pub fn fired(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |a| a.fired.load(Ordering::Relaxed))
    }

    /// Faults fired at one site.
    pub fn fired_at(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|a| a.sites.get(site))
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }

    /// Invocations counted at one site (0 when unarmed).
    pub fn invocations_at(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|a| a.sites.get(site))
            .map_or(0, |s| s.invocations.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let f = Faults::disarmed();
        assert!(!f.is_armed());
        for _ in 0..100 {
            assert_eq!(f.check(site::QUEUE_PUSH), None);
            assert!(!f.apply_panic_stall(site::REACTOR_TICK));
        }
        assert_eq!(f.fired(), 0);
    }

    #[test]
    fn fires_exactly_at_scheduled_indices() {
        let f = FaultPlan::new()
            .fault("x", 2, FaultAction::Error)
            .fault("x", 5, FaultAction::Stall(Duration::from_millis(1)))
            .fault("y", 0, FaultAction::Panic)
            .arm();
        let got: Vec<Option<FaultAction>> = (0..8).map(|_| f.check("x")).collect();
        for (i, action) in got.iter().enumerate() {
            match i {
                2 => assert_eq!(*action, Some(FaultAction::Error)),
                5 => assert_eq!(*action, Some(FaultAction::Stall(Duration::from_millis(1)))),
                _ => assert_eq!(*action, None),
            }
        }
        assert_eq!(f.check("y"), Some(FaultAction::Panic));
        assert_eq!(f.check("unknown"), None);
        assert_eq!(f.fired(), 3);
        assert_eq!(f.fired_at("x"), 2);
        assert_eq!(f.invocations_at("x"), 8);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_nonempty() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert_eq!(a.describe(), b.describe(), "seed {seed} not stable");
            assert!(!a.is_empty(), "seed {seed} schedules nothing");
        }
        assert_ne!(
            FaultPlan::seeded(1).describe(),
            FaultPlan::seeded(2).describe(),
            "distinct seeds should explore distinct schedules"
        );
    }

    #[test]
    fn seeded_submitter_sites_never_panic() {
        // `queue.push` runs on the submitter's thread; a seeded plan must
        // not unwind callers of `submit`.
        for seed in 0..256u64 {
            for (site, _, action) in &FaultPlan::seeded(seed).faults {
                if site == site::QUEUE_PUSH {
                    assert!(
                        matches!(action, FaultAction::Stall(_)),
                        "seed {seed}: {action:?} at {site}"
                    );
                }
            }
        }
    }

    #[test]
    fn apply_panic_stall_panics_on_schedule() {
        let f = FaultPlan::new().fault("z", 0, FaultAction::Panic).arm();
        let err = std::panic::catch_unwind(|| f.apply_panic_stall("z"));
        assert!(err.is_err());
        assert_eq!(f.fired_at("z"), 1);
    }
}
