//! Combinatorial subset enumeration used by vertex-based DP algorithms.
//!
//! Two enumeration schemes from the paper:
//!
//! * **Gosper's hack** — visits all `n`-bit masks with exactly `k` bits set in
//!   increasing numeric order. The sequential DPSUB/MPDP implementations use
//!   it to stream the level-`k` sets (`S_i` in Algorithms 1–3).
//! * **Combinatorial unranking** — maps a rank `r ∈ [0, C(n,k))` directly to
//!   the `r`-th `k`-subset. This is the "combinatorial schema as in \[23\]"
//!   used by the GPU *unrank* phase (§5): every simulated GPU lane unranks its
//!   own set independently, which is what makes the phase embarrassingly
//!   parallel.
//! * **`pdep`** — software parallel-bit-deposit, used to expand a dense
//!   `|S|`-bit subset index into a sparse mask over the members of `S`
//!   (§2.2.1: "`S_left` is obtained by enumerating from 1 to 2^|S_i|, upon
//!   expanding the result of `S_i` bits using parallel bit deposit").

use crate::bitset::RelSet;

/// Binomial coefficient `C(n, k)` with saturating arithmetic.
///
/// For the sizes this workspace needs (`n ≤ 64`) the exact value fits a `u64`
/// up to well past `C(64, 32)`... which it does not (≈ 1.8e18 fits; C(64,32)
/// ≈ 1.83e18 < u64::MAX), so plain u64 arithmetic with interleaved division
/// is exact.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) is exact because acc always holds C(n, i+1)
        // after the step; use u128 to avoid intermediate overflow.
        let wide = acc as u128 * (n - i) as u128 / (i + 1) as u128;
        acc = u64::try_from(wide).unwrap_or(u64::MAX);
    }
    acc
}

/// Iterator over all `k`-element subsets of `{0..n}` (Gosper's hack).
pub struct KSubsets {
    cur: u64,
    limit: u64,
    done: bool,
}

impl KSubsets {
    /// Creates the iterator. `k == 0` yields nothing (the DP never asks for
    /// empty levels); `k > n` also yields nothing.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 64);
        if k == 0 || k > n {
            return KSubsets {
                cur: 0,
                limit: 0,
                done: true,
            };
        }
        let limit = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        KSubsets {
            cur: (1u64 << k) - 1,
            limit,
            done: false,
        }
    }
}

impl Iterator for KSubsets {
    type Item = RelSet;

    #[inline]
    fn next(&mut self) -> Option<RelSet> {
        if self.done {
            return None;
        }
        let v = self.cur;
        if v > self.limit {
            self.done = true;
            return None;
        }
        // Gosper's hack: next higher integer with same popcount.
        let c = v & v.wrapping_neg();
        let r = v.wrapping_add(c);
        if r == 0 || c == 0 {
            self.done = true;
        } else {
            self.cur = (((r ^ v) >> 2) / c) | r;
        }
        Some(RelSet(v))
    }
}

/// Unranks the `rank`-th `k`-subset of `{0..n}` in colexicographic order.
///
/// `rank` must be `< C(n, k)`. The mapping is a bijection; see tests.
pub fn unrank_subset(n: usize, k: usize, mut rank: u64) -> RelSet {
    debug_assert!(rank < binomial(n as u64, k as u64));
    let mut set = RelSet::empty();
    let mut kk = k as u64;
    // Choose the highest element first: the largest c such that C(c, kk) <= rank
    // determines membership (standard combinatorial number system).
    let mut c = n as u64;
    while kk > 0 {
        c -= 1;
        let b = binomial(c, kk);
        if rank >= b {
            set = set.with(c as usize);
            rank -= b;
            kk -= 1;
        }
        // When c reaches kk, the remaining elements are forced: {0..kk}.
        if c == kk && kk > 0 {
            for i in 0..kk {
                set = set.with(i as usize);
            }
            break;
        }
    }
    set
}

/// Software `pdep`: deposits the low bits of `src` into the set positions of
/// `mask`, in increasing position order.
///
/// Used to turn a dense subset index `1..2^|S|` into a submask of `S`.
#[inline]
pub fn pdep(src: u64, mask: u64) -> u64 {
    let mut result = 0u64;
    let mut m = mask;
    let mut bit = 1u64;
    while m != 0 {
        let lowest = m & m.wrapping_neg();
        if src & bit != 0 {
            result |= lowest;
        }
        m ^= lowest;
        bit <<= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(25, 12), 5_200_300);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..30u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn ksubsets_count_and_uniqueness() {
        for n in 1..=10usize {
            for k in 1..=n {
                let sets: Vec<RelSet> = KSubsets::new(n, k).collect();
                assert_eq!(sets.len() as u64, binomial(n as u64, k as u64));
                let distinct: HashSet<u64> = sets.iter().map(|s| s.bits()).collect();
                assert_eq!(distinct.len(), sets.len());
                for s in &sets {
                    assert_eq!(s.len(), k);
                    assert!(s.is_subset(RelSet::first_n(n)));
                }
            }
        }
    }

    #[test]
    fn ksubsets_edge_cases() {
        assert_eq!(KSubsets::new(5, 0).count(), 0);
        assert_eq!(KSubsets::new(5, 6).count(), 0);
        assert_eq!(KSubsets::new(1, 1).count(), 1);
        assert_eq!(KSubsets::new(64, 1).count(), 64);
        assert_eq!(KSubsets::new(64, 63).count(), 64);
    }

    #[test]
    fn unrank_is_a_bijection() {
        for n in 1..=12usize {
            for k in 1..=n {
                let total = binomial(n as u64, k as u64);
                let mut seen = HashSet::new();
                for r in 0..total {
                    let s = unrank_subset(n, k, r);
                    assert_eq!(s.len(), k, "n={n} k={k} r={r}");
                    assert!(s.is_subset(RelSet::first_n(n)));
                    assert!(seen.insert(s.bits()), "duplicate for n={n} k={k} r={r}");
                }
                assert_eq!(seen.len() as u64, total);
            }
        }
    }

    #[test]
    fn unrank_matches_gosper_set_family() {
        // Same family of sets, possibly different order.
        let n = 9;
        let k = 4;
        let a: HashSet<u64> = KSubsets::new(n, k).map(|s| s.bits()).collect();
        let b: HashSet<u64> = (0..binomial(n as u64, k as u64))
            .map(|r| unrank_subset(n, k, r).bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn pdep_basics() {
        assert_eq!(pdep(0b000, 0b101010), 0);
        assert_eq!(pdep(0b001, 0b101010), 0b000010);
        assert_eq!(pdep(0b010, 0b101010), 0b001000);
        assert_eq!(pdep(0b100, 0b101010), 0b100000);
        assert_eq!(pdep(0b111, 0b101010), 0b101010);
    }

    #[test]
    fn pdep_enumerates_all_submasks() {
        let mask = 0b1101u64;
        let k = mask.count_ones();
        let subs: HashSet<u64> = (0..(1u64 << k)).map(|i| pdep(i, mask)).collect();
        assert_eq!(subs.len(), 1 << k);
        for s in &subs {
            assert_eq!(s & !mask, 0);
        }
    }
}
