//! # mpdp-core
//!
//! Core substrates for the MPDP join-order-optimization workspace, a
//! from-scratch Rust reproduction of *"Efficient Massively Parallel Join
//! Optimization for Large Queries"* (SIGMOD 2022).
//!
//! This crate hosts everything the DP algorithms and heuristics share:
//!
//! * [`bitset::RelSet`] — 64-bit bitmap relation sets (exact-DP regime);
//! * [`bigset::BigSet`] — dynamic bitmaps (heuristic regime, 1000+ relations);
//! * [`combinatorics`] — Gosper iteration, combinatorial unranking, `pdep`;
//! * [`enumerate`] — connected-subset frontier enumeration (the fast
//!   alternative to unrank-and-filter for level-structured DP);
//! * [`fingerprint`] — query canonicalization + 128-bit fingerprints, the
//!   key function of the whole-query plan cache in the facade;
//! * [`graph::JoinGraph`] — join graphs, connectivity, the §3.2.1 `grow`
//!   function;
//! * [`blocks`] — Hopcroft–Tarjan biconnected components of induced
//!   subgraphs (MPDP's block decomposition);
//! * [`query`] — [`query::QueryInfo`] / [`query::LargeQuery`] problem
//!   descriptions and sub-problem projection;
//! * [`memo::MemoTable`] — the Murmur3 open-addressing memo of §5, and the
//!   [`memo::MemoStore`] interface both memo implementations speak;
//! * [`atomic_memo::AtomicMemo`] — the lock-free shared memo the parallel
//!   backends update in place (the paper's global table with `atomicMin`);
//! * [`plan::PlanTree`] — join trees, validation, memo extraction;
//! * [`counters`] — `EvaluatedCounter` / `CCP-Counter` instrumentation and
//!   per-level profiles;
//! * [`faults`] — seeded, deterministic fault injection points for the
//!   serving stack's chaos tests (no-ops when unarmed);
//! * [`sync`] — poison-recovering lock helpers, so a panic-isolated worker
//!   doesn't cascade into every later holder of its locks.

#![warn(missing_docs)]

pub mod atomic_memo;
pub mod bigset;
pub mod bitset;
pub mod blocks;
pub mod combinatorics;
pub mod counters;
pub mod enumerate;
pub mod error;
pub mod faults;
pub mod fingerprint;
pub mod graph;
pub mod memo;
pub mod plan;
pub mod query;
pub mod ring;
pub mod sync;

pub use atomic_memo::AtomicMemo;
pub use bigset::BigSet;
pub use bitset::RelSet;
pub use blocks::{find_blocks, BlockDecomposition};
pub use counters::{CacheCounters, CacheSnapshot, Counters, ExecCounters, LevelStats, Profile};
pub use enumerate::{EnumerationMode, FrontierEnumerator, SeenTable};
pub use error::OptError;
pub use faults::{FaultAction, FaultPlan, Faults};
pub use fingerprint::{canonicalize, CanonicalQuery, Fingerprint};
pub use graph::{Edge, JoinGraph};
pub use memo::{MemoEntry, MemoHealth, MemoStore, MemoTable};
pub use plan::{extract_plan, PlanTree};
pub use query::{LargeEdge, LargeQuery, QueryInfo, RelInfo};
pub use ring::HashRing;
