//! Poison-recovering lock helpers.
//!
//! The serving stack isolates panics instead of aborting: a worker that
//! panics mid-poll is caught and the task completed with an error. That
//! leaves `std` mutexes it held *poisoned*, and the previous idiom —
//! `lock().expect("poisoned")` at every site — turned one contained panic
//! into a process-wide cascade: every later caller of the same lock
//! panicked in turn. All the state guarded by these locks is
//! panic-consistent (queues of owned items, waker lists, counter slots;
//! invariants are re-established before any unwind can start or are
//! re-checked by the next holder), so the right policy is to take the
//! guard back and keep serving.
//!
//! These helpers centralize that policy. They are the only place in the
//! workspace that touches [`std::sync::PoisonError`]; call sites read as
//! plain lock acquisitions.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Equivalent to `m.lock().unwrap()` except that poisoning — a panic on
/// another thread while it held this lock — is cleared instead of
/// propagated. Use only for state that stays consistent across an unwind
/// (see the module docs).
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery policy as
/// [`lock_recover`].
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison-recovery policy as
/// [`lock_recover`].
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recover_clears_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn wait_timeout_recover_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let (_g, res) = wait_timeout_recover(&cv, lock_recover(&m), Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
