//! Join graphs over at most 64 relations.
//!
//! A query's inner-join predicates form an undirected graph `G(R, E)` whose
//! vertices are the relations of the FROM clause (§2.1). All exact DP
//! algorithms in `mpdp-dp`, `mpdp-parallel` and `mpdp-gpu` consume this
//! representation. Each vertex keeps its adjacency as a [`RelSet`] bitmap so
//! the neighbourhood of a whole *set* of vertices is a handful of word ORs.

use crate::bitset::RelSet;

/// An undirected join edge with its estimated join-predicate selectivity.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge {
    /// Lower endpoint (vertex index).
    pub u: u32,
    /// Upper endpoint (vertex index).
    pub v: u32,
    /// Selectivity of the predicate, in `(0, 1]`.
    pub sel: f64,
}

/// An undirected join graph over vertices `0..n`, `n ≤ 64`.
#[derive(Clone, Debug)]
pub struct JoinGraph {
    n: usize,
    adj: Vec<RelSet>,
    /// Per-vertex incident edges: `(neighbor, selectivity)`.
    adj_list: Vec<Vec<(u32, f64)>>,
    edges: Vec<Edge>,
}

impl JoinGraph {
    /// Creates a graph with `n` isolated vertices.
    ///
    /// # Panics
    /// Panics if `n > 64`; use the heuristic layer's `LargeQuery` for bigger
    /// graphs.
    pub fn new(n: usize) -> Self {
        assert!(n <= 64, "JoinGraph supports at most 64 relations (got {n})");
        JoinGraph {
            n,
            adj: vec![RelSet::empty(); n],
            adj_list: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The full vertex set.
    #[inline]
    pub fn all_vertices(&self) -> RelSet {
        RelSet::first_n(self.n)
    }

    /// Adds an undirected edge `u — v` with the given selectivity.
    ///
    /// Parallel edges are merged by multiplying selectivities (they represent
    /// conjunctive predicates over the same relation pair). Self-loops are
    /// rejected.
    ///
    /// # Panics
    /// Panics on out-of-range vertices, a self-loop, or a selectivity outside
    /// `(0, 1]`.
    pub fn add_edge(&mut self, u: usize, v: usize, sel: f64) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self-loop on vertex {u}");
        assert!(
            sel > 0.0 && sel <= 1.0 && sel.is_finite(),
            "selectivity {sel} outside (0, 1]"
        );
        let sel = sel.max(1e-300); // avoid products underflowing to zero
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        if let Some(e) = self
            .edges
            .iter_mut()
            .find(|e| e.u == a as u32 && e.v == b as u32)
        {
            e.sel = (e.sel * sel).max(1e-300);
            // Update adjacency lists in both directions.
            for &(x, y) in &[(a, b), (b, a)] {
                for entry in self.adj_list[x].iter_mut() {
                    if entry.0 == y as u32 {
                        entry.1 = (entry.1 * sel).max(1e-300);
                    }
                }
            }
            return;
        }
        self.edges.push(Edge {
            u: a as u32,
            v: b as u32,
            sel,
        });
        self.adj[a] = self.adj[a].with(b);
        self.adj[b] = self.adj[b].with(a);
        self.adj_list[a].push((b as u32, sel));
        self.adj_list[b].push((a as u32, sel));
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The adjacency bitmap of a single vertex.
    #[inline]
    pub fn adjacency(&self, v: usize) -> RelSet {
        self.adj[v]
    }

    /// Incident `(neighbor, selectivity)` pairs of a vertex.
    #[inline]
    pub fn incident(&self, v: usize) -> &[(u32, f64)] {
        &self.adj_list[v]
    }

    /// The neighbourhood of a vertex set: all vertices adjacent to some member
    /// of `set`, excluding `set` itself.
    #[inline]
    pub fn neighbors(&self, set: RelSet) -> RelSet {
        let mut nb = RelSet::empty();
        for v in set.iter() {
            nb = nb.union(self.adj[v]);
        }
        nb.difference(set)
    }

    /// The *grow* function of §3.2.1: starting from `source`, repeatedly adds
    /// every vertex of `restrict` adjacent to the current set, returning all
    /// vertices of `restrict` reachable from `source` without leaving
    /// `restrict`.
    ///
    /// `source` must be a subset of `restrict` ("restricted nodes (superset of
    /// source nodes)").
    pub fn grow(&self, source: RelSet, restrict: RelSet) -> RelSet {
        debug_assert!(source.is_subset(restrict));
        let mut cur = source;
        loop {
            let next = self.neighbors(cur).intersect(restrict);
            if next.is_empty() {
                return cur;
            }
            cur = cur.union(next);
        }
    }

    /// `true` if the subgraph induced by `set` is connected (empty and
    /// singleton sets count as connected).
    #[inline]
    pub fn is_connected(&self, set: RelSet) -> bool {
        match set.first() {
            None => true,
            Some(v) => self.grow(RelSet::singleton(v), set) == set,
        }
    }

    /// `true` if there is at least one edge between `a` and `b`.
    #[inline]
    pub fn sets_connected(&self, a: RelSet, b: RelSet) -> bool {
        self.neighbors(a).overlaps(b)
    }

    /// Product of the selectivities of all edges with one endpoint in `a` and
    /// the other in `b`. Returns 1.0 when no edge crosses.
    ///
    /// This is the factor by which the cross-product cardinality
    /// `|a| × |b|` shrinks when joining the two sides, and — because every
    /// induced edge of `a ∪ b` is counted exactly once across the recursive
    /// decomposition — it makes estimated cardinalities split-invariant.
    pub fn selectivity_between(&self, a: RelSet, b: RelSet) -> f64 {
        debug_assert!(a.is_disjoint(b));
        // Iterate from the smaller side.
        let (from, to) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let mut sel = 1.0;
        for v in from.iter() {
            for &(w, s) in &self.adj_list[v] {
                if to.contains(w as usize) {
                    sel *= s;
                }
            }
        }
        sel
    }

    /// Iterates over the edges of the subgraph induced by `set`.
    pub fn induced_edges<'a>(&'a self, set: RelSet) -> impl Iterator<Item = &'a Edge> + 'a {
        self.edges
            .iter()
            .filter(move |e| set.contains(e.u as usize) && set.contains(e.v as usize))
    }

    /// Counts the edges of the subgraph induced by `set`.
    pub fn induced_edge_count(&self, set: RelSet) -> usize {
        self.induced_edges(set).count()
    }

    /// `true` if the whole graph is connected.
    pub fn is_fully_connected_graph(&self) -> bool {
        self.is_connected(self.all_vertices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 9-relation example graph of Figure 5 (0-indexed: paper vertex k is
    /// our k-1). Edges: cycle 1-2-4-3-1 plus chord... per Figure 5:
    /// {1,2,3,4} is a block (cycle 1-2, 2-4?, ...). We reconstruct: block
    /// {1,2,3,4} fully cyclic via edges (1,2),(2,4),(4,3),(3,1); bridges
    /// (4,5),(5,9); block {6,7,8,9} via (6,7),(7,8),(8,9),(9,6).
    pub(crate) fn figure5_graph() -> JoinGraph {
        let mut g = JoinGraph::new(9);
        // paper vertices 1..9 -> indices 0..8
        for &(u, v) in &[
            (1, 2),
            (2, 4),
            (4, 3),
            (3, 1), // block {1,2,3,4}
            (4, 5), // bridge
            (5, 9), // bridge
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 6), // block {6,7,8,9}
        ] {
            g.add_edge(u - 1, v - 1, 0.1);
        }
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = figure5_graph();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 10);
        assert!(g.is_fully_connected_graph());
    }

    #[test]
    fn neighbors_of_sets() {
        let g = figure5_graph();
        // Vertex 4 (paper 5) neighbors paper {4, 9} = idx {3, 8}.
        assert_eq!(
            g.neighbors(RelSet::singleton(4)),
            RelSet::from_indices([3, 8])
        );
        // Neighborhood excludes the set itself.
        let s = RelSet::from_indices([0, 1]);
        assert!(g.neighbors(s).is_disjoint(s));
    }

    #[test]
    fn grow_example_from_paper() {
        // §3.2.1: source {1,2,3}, restricted {1,2,3,4,5,9} -> all of it.
        let g = figure5_graph();
        let src = RelSet::from_indices([0, 1, 2]);
        let restrict = RelSet::from_indices([0, 1, 2, 3, 4, 8]);
        assert_eq!(g.grow(src, restrict), restrict);
    }

    #[test]
    fn grow_stops_at_restriction() {
        let g = figure5_graph();
        // From paper vertex 1 restricted to {1,2}: cannot reach 3,4.
        let got = g.grow(RelSet::singleton(0), RelSet::from_indices([0, 1]));
        assert_eq!(got, RelSet::from_indices([0, 1]));
    }

    #[test]
    fn connectivity_checks() {
        let g = figure5_graph();
        assert!(g.is_connected(RelSet::empty()));
        assert!(g.is_connected(RelSet::singleton(3)));
        assert!(g.is_connected(RelSet::from_indices([0, 1, 2, 3])));
        // Paper {1,2,4} with edges (1,2),(2,4): connected.
        assert!(g.is_connected(RelSet::from_indices([0, 1, 3])));
        // Paper {1, 9}: not connected.
        assert!(!g.is_connected(RelSet::from_indices([0, 8])));
        // Paper example from §2.1: {1,2,4} vs {6,7,8} not connected to each other.
        let a = RelSet::from_indices([0, 1, 3]);
        let b = RelSet::from_indices([5, 6, 7]);
        assert!(!g.sets_connected(a, b));
        // {1,2,4} vs {5,6}: edge (4,5) paper = (3,4) ours.
        let c = RelSet::from_indices([4, 5]);
        assert!(g.sets_connected(a, c));
    }

    #[test]
    fn selectivity_between_multiplies_crossing_edges() {
        let mut g = JoinGraph::new(4);
        g.add_edge(0, 1, 0.5);
        g.add_edge(1, 2, 0.25);
        g.add_edge(2, 3, 0.1);
        g.add_edge(0, 3, 0.2);
        let a = RelSet::from_indices([0, 1]);
        let b = RelSet::from_indices([2, 3]);
        // Crossing edges: (1,2) and (0,3).
        let s = g.selectivity_between(a, b);
        assert!((s - 0.25 * 0.2).abs() < 1e-12);
        // No crossing edge -> 1.0
        let mut h = JoinGraph::new(3);
        h.add_edge(0, 1, 0.5);
        assert_eq!(
            h.selectivity_between(RelSet::singleton(0), RelSet::singleton(2)),
            1.0
        );
    }

    #[test]
    fn parallel_edges_merge_multiplicatively() {
        let mut g = JoinGraph::new(2);
        g.add_edge(0, 1, 0.5);
        g.add_edge(1, 0, 0.5);
        assert_eq!(g.num_edges(), 1);
        let s = g.selectivity_between(RelSet::singleton(0), RelSet::singleton(1));
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn induced_edges_filtering() {
        let g = figure5_graph();
        let s = RelSet::from_indices([0, 1, 2, 3]); // paper block {1,2,3,4}
        assert_eq!(g.induced_edge_count(s), 4);
        assert_eq!(g.induced_edge_count(RelSet::singleton(0)), 0);
        assert_eq!(g.induced_edge_count(g.all_vertices()), 10);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = JoinGraph::new(2);
        g.add_edge(1, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn bad_selectivity_rejected() {
        let mut g = JoinGraph::new(2);
        g.add_edge(0, 1, 0.0);
    }
}
