//! Error types shared by the optimizer crates.

use std::fmt;
use std::time::Duration;

/// Failures an optimizer run can report.
#[derive(Clone, Debug, PartialEq)]
pub enum OptError {
    /// The optimizer exceeded its time budget (the paper uses 1-minute
    /// timeouts in §7.2 and marks timed-out series with dashes in Tables 1–2).
    Timeout {
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// The query graph is disconnected, so no cross-product-free plan covers
    /// all relations.
    DisconnectedGraph,
    /// The query has no relations.
    EmptyQuery,
    /// The query is too large for this algorithm (e.g. exact DP beyond 64
    /// relations).
    TooLarge {
        /// Number of relations in the query.
        got: usize,
        /// Maximum supported by the algorithm.
        max: usize,
    },
    /// Internal invariant violation — indicates a bug, kept as an error so
    /// harnesses can report instead of aborting.
    Internal(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Timeout { budget } => {
                write!(f, "optimization exceeded time budget of {budget:?}")
            }
            OptError::DisconnectedGraph => {
                write!(
                    f,
                    "join graph is disconnected; no cross-product-free plan exists"
                )
            }
            OptError::EmptyQuery => write!(f, "query has no relations"),
            OptError::TooLarge { got, max } => {
                write!(
                    f,
                    "query has {got} relations, algorithm supports at most {max}"
                )
            }
            OptError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = OptError::Timeout {
            budget: Duration::from_secs(60),
        };
        assert!(e.to_string().contains("time budget"));
        assert!(OptError::DisconnectedGraph
            .to_string()
            .contains("disconnected"));
        assert!(OptError::TooLarge { got: 100, max: 64 }
            .to_string()
            .contains("100"));
    }
}
